// Package corpus generates labeled contract corpora: random function
// signatures with realistic type distributions, compiled by the miniature
// Solidity/Vyper compilers under randomly drawn versions, optimization
// levels, and body usage plans.
//
// It is the substitution for the paper's Etherscan datasets (DESIGN.md §4):
// ground truth comes from the generated declaration, and recovery accuracy
// below 100% emerges from the same causes the paper reports (bodies that
// leave insufficient clues, type conversions, flattened static structs,
// optimized constant-index accesses).
package corpus

import (
	"fmt"
	"math/rand"

	"sigrec/internal/abi"
	"sigrec/internal/solc"
	"sigrec/internal/vyperc"
)

// Language labels the source compiler of an entry.
type Language int

// Corpus languages.
const (
	Solidity Language = iota + 1
	Vyper
)

// String implements fmt.Stringer.
func (l Language) String() string {
	if l == Vyper {
		return "vyper"
	}
	return "solidity"
}

// Entry is one labeled function: the declared signature (ground truth), the
// contract bytecode implementing it, and the generation metadata.
type Entry struct {
	// Sig is the declared signature: the ground truth for accuracy.
	Sig abi.Signature
	// Code is the runtime bytecode of the (single-function) contract.
	Code []byte
	// Language, Version, Optimized and Mode describe how it was compiled.
	Language  Language
	Version   string
	Optimized bool
	Mode      solc.Mode
	// Flaw explains why recovery may legitimately fail ("" = clue-rich).
	Flaw string
}

// Config controls generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Solidity and Vyper are the number of functions per language.
	Solidity int
	Vyper    int
	// AmbiguityRate is the probability that a parameter's body usage drops
	// the clue SigRec needs (the paper's case 5); applied only to
	// ambiguity-prone types.
	AmbiguityRate float64
	// ConversionRate is the probability a body accesses a parameter as a
	// converted narrower type (the paper's case 2).
	ConversionRate float64
	// AsmReadRate is the probability a function body reads undeclared
	// call-data values through inline assembly (the paper's case 1).
	AsmReadRate float64
	// StorageRefRate is the probability a reference-typed parameter is a
	// storage pointer, read as a slot key (the paper's case 4).
	StorageRefRate float64
	// MaxParams bounds the parameter count per function.
	MaxParams int
}

// DefaultConfig mirrors the corpus proportions used by the experiments.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		Solidity:       2000,
		Vyper:          150,
		AmbiguityRate:  0.035,
		ConversionRate: 0.004,
		AsmReadRate:    0.004,
		StorageRefRate: 0.005,
		MaxParams:      4,
	}
}

// Corpus is a generated set of labeled entries.
type Corpus struct {
	Entries []Entry
}

// Generate builds a corpus.
func Generate(cfg Config) (*Corpus, error) {
	if cfg.MaxParams <= 0 {
		cfg.MaxParams = 4
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: cfg, r: r}
	c := &Corpus{Entries: make([]Entry, 0, cfg.Solidity+cfg.Vyper)}
	for i := 0; i < cfg.Solidity; i++ {
		e, err := g.solidityEntry(i)
		if err != nil {
			return nil, fmt.Errorf("corpus: solidity entry %d: %w", i, err)
		}
		c.Entries = append(c.Entries, e)
	}
	for i := 0; i < cfg.Vyper; i++ {
		e, err := g.vyperEntry(i)
		if err != nil {
			return nil, fmt.Errorf("corpus: vyper entry %d: %w", i, err)
		}
		c.Entries = append(c.Entries, e)
	}
	return c, nil
}

type generator struct {
	cfg Config
	r   *rand.Rand
}

// --- name generation ---

var nameStems = []string{
	"transfer", "approve", "mint", "burn", "stake", "claim", "deposit",
	"withdraw", "swap", "vote", "register", "update", "set", "get",
	"execute", "cancel", "pause", "configure", "delegate", "settle",
}

func (g *generator) funcName(i int) string {
	stem := nameStems[g.r.Intn(len(nameStems))]
	return fmt.Sprintf("%s%c%d", stem, 'A'+rune(g.r.Intn(26)), i)
}

// randomLetters builds the synthesized-dataset names (5 random letters).
func randomLetters(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

// --- Solidity type distribution ---

// solType draws a parameter type with an Etherscan-like distribution:
// addresses and uint256 dominate, dynamic types are common, structs and
// nested arrays are rare (0.5% in the paper's dataset 3).
func (g *generator) solType(allowV2 bool) abi.Type {
	roll := g.r.Float64()
	switch {
	case roll < 0.28:
		return abi.Address()
	case roll < 0.56:
		return abi.Uint(256)
	case roll < 0.63:
		return abi.Uint(8 * (1 + g.r.Intn(31))) // uint8..uint248
	case roll < 0.68:
		return abi.Bool()
	case roll < 0.72:
		return abi.FixedBytes(32)
	case roll < 0.74:
		return abi.FixedBytes(1 + g.r.Intn(31))
	case roll < 0.77:
		if g.r.Intn(2) == 0 {
			return abi.Int(256)
		}
		return abi.Int(8 * (1 + g.r.Intn(31)))
	case roll < 0.83:
		return abi.String_()
	case roll < 0.87:
		return abi.Bytes()
	case roll < 0.93:
		return abi.SliceOf(g.solBasic())
	case roll < 0.955:
		return abi.ArrayOf(g.solBasic(), 2+g.r.Intn(4))
	case roll < 0.975:
		// Multi-dimensional.
		inner := abi.ArrayOf(g.solBasic(), 2+g.r.Intn(3))
		if g.r.Intn(2) == 0 {
			return abi.SliceOf(inner)
		}
		return abi.ArrayOf(inner, 2+g.r.Intn(3))
	case roll < 0.985 && allowV2:
		// Nested array.
		if g.r.Intn(2) == 0 {
			return abi.SliceOf(abi.SliceOf(g.solBasic()))
		}
		return abi.ArrayOf(abi.SliceOf(g.solBasic()), 2+g.r.Intn(3))
	case allowV2:
		// Struct; mostly dynamic, some static (static ones flatten), and
		// occasionally a nested-array member (rule R19's case).
		switch g.r.Intn(4) {
		case 0:
			return abi.TupleOf(g.solBasic(), g.solBasic())
		case 1:
			return abi.TupleOf(abi.SliceOf(abi.SliceOf(g.solBasic())), g.solBasic())
		default:
			return abi.TupleOf(abi.SliceOf(g.solBasic()), g.solBasic())
		}
	default:
		return abi.Uint(256)
	}
}

func (g *generator) solBasic() abi.Type {
	switch g.r.Intn(6) {
	case 0:
		return abi.Address()
	case 1:
		return abi.Uint(8 * (1 + g.r.Intn(31)))
	case 2:
		return abi.Bool()
	case 3:
		return abi.Int(8 * (1 + g.r.Intn(32)))
	default:
		return abi.Uint(256)
	}
}

// --- usage plans and flaws ---

// planWithFlaws derives the usage plan, possibly dropping clues.
func (g *generator) planWithFlaws(sig abi.Signature, optimize bool) ([]solc.Usage, string) {
	plan := make([]solc.Usage, len(sig.Inputs))
	flaw := ""
	for i, t := range sig.Inputs {
		u := solc.DefaultUsage(t)
		if g.r.Float64() < g.cfg.AmbiguityRate {
			switch {
			case t.Kind == abi.KindBytes:
				u.ByteAccess = false
				flaw = "bytes without byte access"
			case t.Kind == abi.KindFixedBytes && t.Size == 32:
				u.ByteAccess = false
				flaw = "bytes32 without byte access"
			case t.Kind == abi.KindInt && t.Bits == 256:
				u.SignedOp = false
				flaw = "int256 without signed op"
			case t.Kind == abi.KindUint && t.Bits == 160:
				u.Math = false
				flaw = "uint160 without arithmetic"
			case t.Kind == abi.KindArray && !t.IsDynamic() && optimize:
				u.ConstIndex = true
				flaw = "optimized constant-index static array"
			}
		}
		plan[i] = u
	}
	for _, t := range sig.Inputs {
		if t.Kind == abi.KindTuple && !t.IsDynamic() {
			flaw = "static struct flattens"
		}
	}
	return plan, flaw
}

// maybeConvert applies the paper's case-2 flaw: the body accesses the value
// as a narrower converted type. The returned signature is what the body is
// compiled against; the declared one stays the ground truth.
func (g *generator) maybeConvert(sig abi.Signature) (abi.Signature, string) {
	if g.r.Float64() >= g.cfg.ConversionRate {
		return sig, ""
	}
	body := sig
	body.Inputs = append([]abi.Type(nil), sig.Inputs...)
	for i, t := range body.Inputs {
		if t.Kind == abi.KindUint && t.Bits == 256 {
			body.Inputs[i] = abi.Uint(8)
			return body, "uint256 accessed as uint8 (type conversion)"
		}
	}
	return sig, ""
}

// --- entries ---

func (g *generator) solidityEntry(i int) (Entry, error) {
	versions := solc.Versions()
	v := versions[g.r.Intn(len(versions))]
	optimize := g.r.Intn(2) == 0
	n := g.r.Intn(g.cfg.MaxParams + 1)
	sig := abi.Signature{Name: g.funcName(i)}
	for p := 0; p < n; p++ {
		sig.Inputs = append(sig.Inputs, g.solType(v.ABIEncoderV2))
	}
	mode := solc.Public
	if g.r.Intn(2) == 0 {
		mode = solc.External
	}
	bodySig, convFlaw := g.maybeConvert(sig)
	plan, flaw := g.planWithFlaws(bodySig, optimize)
	if convFlaw != "" {
		flaw = convFlaw
	}
	fn := solc.Function{
		Sig:  abi.Signature{Name: sig.Name, Inputs: bodySig.Inputs},
		Mode: mode,
		Plan: plan,
	}
	// Paper case 1: inline-assembly reads of undeclared values.
	if g.r.Float64() < g.cfg.AsmReadRate {
		fn.AsmReads = 1 + g.r.Intn(2)
		flaw = "inline assembly reads undeclared values"
	}
	// Paper case 4: a reference-typed parameter with the storage modifier.
	if g.r.Float64() < g.cfg.StorageRefRate {
		for i, t := range bodySig.Inputs {
			if t.IsDynamic() || t.Kind == abi.KindArray {
				refs := make([]bool, len(bodySig.Inputs))
				refs[i] = true
				fn.StorageRef = refs
				flaw = "storage-modifier parameter read as slot reference"
				break
			}
		}
	}
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{fn}}, solc.Config{Version: v, Optimize: optimize})
	if err != nil {
		return Entry{}, err
	}
	// The dispatcher must answer to the *declared* selector: patch the
	// compiled selector constant when a conversion changed the type list.
	if convFlaw != "" {
		code = patchSelector(code, bodySig.Selector(), sig.Selector())
	}
	return Entry{
		Sig:       sig,
		Code:      code,
		Language:  Solidity,
		Version:   v.Name,
		Optimized: optimize,
		Mode:      mode,
		Flaw:      flaw,
	}, nil
}

func (g *generator) vyperEntry(i int) (Entry, error) {
	versions := vyperc.Versions()
	v := versions[g.r.Intn(len(versions))]
	n := 1 + g.r.Intn(3)
	sig := abi.Signature{Name: g.funcName(i)}
	for p := 0; p < n; p++ {
		sig.Inputs = append(sig.Inputs, g.vyType())
	}
	plan := make([]vyperc.Usage, len(sig.Inputs))
	flaw := ""
	for p, t := range sig.Inputs {
		u := vyperc.DefaultUsage(t)
		if g.r.Float64() < g.cfg.AmbiguityRate {
			switch t.Kind {
			case abi.KindFixedBytes:
				u.ByteAccess = false
				flaw = "bytes32 without byte access"
			case abi.KindBoundedBytes:
				u.ByteAccess = false
				flaw = "bytes[n] without byte access"
			}
		}
		plan[p] = u
	}
	for _, t := range sig.Inputs {
		if t.Kind == abi.KindTuple {
			flaw = "static struct flattens"
		}
	}
	code, err := vyperc.Compile(vyperc.Contract{Functions: []vyperc.Function{{
		Sig:  sig,
		Plan: plan,
	}}}, vyperc.Config{Version: v})
	if err != nil {
		return Entry{}, err
	}
	return Entry{
		Sig:      sig,
		Code:     code,
		Language: Vyper,
		Version:  v.Name,
		Mode:     solc.External,
		Flaw:     flaw,
	}, nil
}

// vyType draws from Vyper's type system.
func (g *generator) vyType() abi.Type {
	roll := g.r.Float64()
	switch {
	case roll < 0.30:
		return abi.Uint(256)
	case roll < 0.50:
		return abi.Address()
	case roll < 0.60:
		return abi.Bool()
	case roll < 0.70:
		return abi.Int(128)
	case roll < 0.76:
		return abi.Decimal()
	case roll < 0.82:
		return abi.FixedBytes(32)
	case roll < 0.90:
		return abi.ArrayOf(g.vyBasic(), 2+g.r.Intn(4))
	case roll < 0.95:
		return abi.BoundedBytes(32 * (1 + g.r.Intn(3)))
	case roll < 0.99:
		return abi.BoundedString(32 * (1 + g.r.Intn(3)))
	default:
		return abi.TupleOf(abi.Uint(256), abi.Uint(256))
	}
}

func (g *generator) vyBasic() abi.Type {
	switch g.r.Intn(4) {
	case 0:
		return abi.Address()
	case 1:
		return abi.Bool()
	case 2:
		return abi.Int(128)
	default:
		return abi.Uint(256)
	}
}

// patchSelector rewrites the PUSH4 dispatcher constant.
func patchSelector(code []byte, from, to abi.Selector) []byte {
	out := append([]byte(nil), code...)
	for i := 0; i+5 <= len(out); i++ {
		if out[i] == 0x63 && // PUSH4
			out[i+1] == from[0] && out[i+2] == from[1] &&
			out[i+3] == from[2] && out[i+4] == from[3] {
			copy(out[i+1:i+5], to[:])
			return out
		}
	}
	return out
}

// GenerateSynthesized reproduces the paper's dataset 2: 1,000 functions
// with 5-random-letter names, 1-5 parameters each, arrays of at most 3
// dimensions and 5 items per dimension, grouped into 100 contracts of 10
// functions, compiled by one compiler version with 50% optimization.
func GenerateSynthesized(seed int64) ([]Entry, error) {
	r := rand.New(rand.NewSource(seed))
	g := &generator{cfg: Config{AmbiguityRate: 0, MaxParams: 5}, r: r}
	version := solc.DefaultVersion()
	version.Name = "0.5.5"
	var entries []Entry
	for contract := 0; contract < 100; contract++ {
		optimize := r.Intn(2) == 0
		var fns []solc.Function
		var sigs []abi.Signature
		for k := 0; k < 10; k++ {
			sig := abi.Signature{Name: randomLetters(r, 5) + fmt.Sprintf("%d", contract*10+k)}
			n := 1 + r.Intn(5)
			for p := 0; p < n; p++ {
				sig.Inputs = append(sig.Inputs, g.synthType())
			}
			mode := solc.Public
			if r.Intn(2) == 0 {
				mode = solc.External
			}
			fns = append(fns, solc.Function{Sig: sig, Mode: mode})
			sigs = append(sigs, sig)
		}
		code, err := solc.Compile(solc.Contract{Functions: fns}, solc.Config{Version: version, Optimize: optimize})
		if err != nil {
			return nil, fmt.Errorf("corpus: synthesized contract %d: %w", contract, err)
		}
		for k, sig := range sigs {
			entries = append(entries, Entry{
				Sig:       sig,
				Code:      code,
				Language:  Solidity,
				Version:   version.Name,
				Optimized: optimize,
				Mode:      fns[k].Mode,
			})
		}
	}
	return entries, nil
}

// synthType draws the synthesized-dataset parameter types: every basic type
// plus arrays up to 3 dimensions with at most 5 items each.
func (g *generator) synthType() abi.Type {
	roll := g.r.Float64()
	switch {
	case roll < 0.55:
		return g.solBasic()
	case roll < 0.65:
		return abi.FixedBytes(1 + g.r.Intn(32))
	case roll < 0.72:
		return abi.String_()
	case roll < 0.79:
		return abi.Bytes()
	case roll < 0.89:
		return abi.SliceOf(g.solBasic())
	case roll < 0.96:
		return abi.ArrayOf(g.solBasic(), 2+g.r.Intn(4))
	default:
		dims := 2 + g.r.Intn(2) // 2 or 3 dimensions
		t := g.solBasic()
		for d := 0; d < dims-1; d++ {
			t = abi.ArrayOf(t, 2+g.r.Intn(4))
		}
		if g.r.Intn(2) == 0 {
			return abi.SliceOf(t)
		}
		return abi.ArrayOf(t, 2+g.r.Intn(4))
	}
}
