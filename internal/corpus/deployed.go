package corpus

import (
	"fmt"
	"math/rand"

	"sigrec/internal/abi"
	"sigrec/internal/solc"
)

// DeployedContract groups several functions behind one dispatcher, like a
// real deployed contract (the per-entry corpus compiles one function per
// contract for per-function labeling; applications that work per contract
// -- reverse engineering, auditing -- use this form).
type DeployedContract struct {
	// Code is the runtime bytecode.
	Code []byte
	// Functions are the declared signatures, dispatcher order.
	Functions []abi.Signature
	// Version and Optimized describe the compilation.
	Version   string
	Optimized bool
}

// DeployedConfig controls multi-function generation.
type DeployedConfig struct {
	Seed      int64
	Contracts int
	// MinFuncs and MaxFuncs bound the functions per contract.
	MinFuncs, MaxFuncs int
	// MaxParams bounds parameters per function.
	MaxParams int
}

// GenerateDeployed builds multi-function contracts with clue-rich bodies.
func GenerateDeployed(cfg DeployedConfig) ([]DeployedContract, error) {
	if cfg.MinFuncs <= 0 {
		cfg.MinFuncs = 2
	}
	if cfg.MaxFuncs < cfg.MinFuncs {
		cfg.MaxFuncs = cfg.MinFuncs + 3
	}
	if cfg.MaxParams <= 0 {
		cfg.MaxParams = 4
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: Config{MaxParams: cfg.MaxParams}, r: r}
	versions := solc.Versions()
	out := make([]DeployedContract, 0, cfg.Contracts)
	for ci := 0; ci < cfg.Contracts; ci++ {
		v := versions[r.Intn(len(versions))]
		optimize := r.Intn(2) == 0
		n := cfg.MinFuncs + r.Intn(cfg.MaxFuncs-cfg.MinFuncs+1)
		var fns []solc.Function
		var sigs []abi.Signature
		for k := 0; k < n; k++ {
			sig := abi.Signature{Name: g.funcName(ci*100 + k)}
			params := 1 + r.Intn(cfg.MaxParams)
			for p := 0; p < params; p++ {
				sig.Inputs = append(sig.Inputs, g.solType(v.ABIEncoderV2))
			}
			mode := solc.Public
			if r.Intn(2) == 0 {
				mode = solc.External
			}
			fns = append(fns, solc.Function{Sig: sig, Mode: mode})
			sigs = append(sigs, sig)
		}
		code, err := solc.Compile(solc.Contract{Functions: fns},
			solc.Config{Version: v, Optimize: optimize})
		if err != nil {
			return nil, fmt.Errorf("corpus: deployed contract %d: %w", ci, err)
		}
		out = append(out, DeployedContract{
			Code:      code,
			Functions: sigs,
			Version:   v.Name,
			Optimized: optimize,
		})
	}
	return out, nil
}
