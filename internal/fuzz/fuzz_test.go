package fuzz

import (
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/core"
	"sigrec/internal/evm"
)

func TestBugContractsExecute(t *testing.T) {
	targets, err := GenerateBugContracts(1, 20, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, bc := range targets {
		if len(bc.Code) == 0 {
			t.Fatalf("contract %d empty", i)
		}
		// A crafted trigger input must fire the beacon.
		vals := make([]abi.Value, len(bc.Sig.Inputs))
		for p, ty := range bc.Sig.Inputs {
			switch ty.Kind {
			case abi.KindBool:
				vals[p] = false
			default:
				vals[p] = evm.WordFromUint64(0)
			}
		}
		vals[0] = evm.WordFromUint64(bc.Residue) // v % m == k
		data, err := abi.EncodeCall(bc.Sig, vals)
		if err != nil {
			t.Fatal(err)
		}
		if !execTriggers(bc.Code, data) {
			t.Errorf("contract %d: crafted trigger did not fire (m=%d k=%d)", i, bc.Modulus, bc.Residue)
		}
		// A wrong residue must not fire.
		vals[0] = evm.WordFromUint64(bc.Residue + 1)
		data2, _ := abi.EncodeCall(bc.Sig, vals)
		if execTriggers(bc.Code, data2) {
			t.Errorf("contract %d: non-trigger fired", i)
		}
	}
}

func TestGuardedContractsRejectWildValues(t *testing.T) {
	targets, err := GenerateBugContracts(3, 40, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, bc := range targets {
		// Find a parameter with a range check and overflow it; contracts
		// whose only guard is a bool cannot be violated by an encoder, so
		// patch raw bytes instead.
		pos := -1
		for i, ty := range bc.Sig.Inputs {
			if ty.Kind == abi.KindAddress || (ty.Kind == abi.KindUint && ty.Bits < 256) ||
				ty.Kind == abi.KindBool {
				pos = i
				break
			}
		}
		if pos < 0 {
			continue
		}
		vals := make([]abi.Value, len(bc.Sig.Inputs))
		for i, ty := range bc.Sig.Inputs {
			if ty.Kind == abi.KindBool {
				vals[i] = false
				continue
			}
			vals[i] = evm.WordFromUint64(0)
		}
		vals[0] = evm.WordFromUint64(bc.Residue) // would trigger if valid
		data, _ := abi.EncodeCall(bc.Sig, vals)
		// Overwrite the guarded slot with an out-of-range value.
		slot := 4 + 32*pos
		for b := slot; b < slot+32; b++ {
			data[b] = 0xee
		}
		if execTriggers(bc.Code, data) {
			t.Errorf("%s: guarded contract accepted out-of-range values", bc.Sig.Canonical())
		}
	}
}

// TestTypedBeatsRandom is the paper's §6.2 shape: with signatures the
// fuzzer finds decidedly more bugs under the same budget.
func TestTypedBeatsRandom(t *testing.T) {
	targets, err := GenerateBugContracts(7, 120, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	typed := RunCampaign(&Typed{}, targets, 80, 99)
	random := RunCampaign(&Random{}, targets, 80, 99)
	if typed.Found <= random.Found {
		t.Fatalf("typed %d vs random %d: no advantage", typed.Found, random.Found)
	}
	gain := float64(typed.Found-random.Found) / float64(random.Found)
	if gain < 0.05 {
		t.Errorf("gain only %.2f", gain)
	}
	t.Logf("typed=%d random=%d gain=%.1f%%", typed.Found, random.Found, gain*100)
}

// TestTypedUsesRecoveredSignatures wires SigRec into the fuzzer: recovery
// from the bug contract's bytecode feeds the typed fuzzer.
func TestTypedUsesRecoveredSignatures(t *testing.T) {
	targets, err := GenerateBugContracts(11, 10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make(map[string][]abi.Type)
	for _, bc := range targets {
		rec, _ := core.RecoverFunction(bc.Code, bc.Sig.Selector())
		if len(rec.Inputs) == 0 {
			t.Fatalf("%s: nothing recovered", bc.Sig.Canonical())
		}
		inputs[bc.Sig.Canonical()] = rec.Inputs
	}
	typed := RunCampaign(&Typed{Inputs: inputs}, targets, 100, 5)
	if typed.Found < len(targets)*8/10 {
		t.Errorf("recovered-signature fuzzing found only %d/%d", typed.Found, len(targets))
	}
}

// TestCoverageGuidedBetweenRandomAndTyped: coverage feedback recovers part
// of the signature advantage -- ordering must be typed >= guided >= random.
func TestCoverageGuidedBetweenRandomAndTyped(t *testing.T) {
	targets, err := GenerateBugContracts(31, 150, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	budget := 120
	typed := RunCampaign(&Typed{}, targets, budget, 7)
	guided := RunCampaign(&Guided{}, targets, budget, 7)
	random := RunCampaign(&Random{}, targets, budget, 7)
	t.Logf("typed=%d guided=%d random=%d", typed.Found, guided.Found, random.Found)
	if guided.Found <= random.Found {
		t.Errorf("coverage guidance gained nothing: guided %d vs random %d",
			guided.Found, random.Found)
	}
	if typed.Found < guided.Found {
		t.Errorf("typed %d below guided %d", typed.Found, guided.Found)
	}
}
