package fuzz

import (
	"math/rand"

	"sigrec/internal/evm"
)

// Guided is a coverage-guided byte-level fuzzer (AFL-style): it keeps a
// pool of inputs that reached new instructions and mutates them. It has no
// type information -- the comparison point between ContractFuzzer⁻ (blind
// random bytes) and ContractFuzzer (typed inputs): coverage feedback
// recovers part of the gap by *learning* the validity checks one branch at
// a time.
type Guided struct{}

var _ Fuzzer = (*Guided)(nil)

// Name implements Fuzzer.
func (f *Guided) Name() string { return "ContractFuzzer-cov" }

// Run implements Fuzzer.
func (f *Guided) Run(c BugContract, budget int, seed int64) Outcome {
	r := rand.New(rand.NewSource(seed))
	sel := c.Sig.Selector()

	// Seed pool: all-zero arguments of a plausible length (zero passes
	// most range checks, giving the explorer a foothold).
	base := make([]byte, 4+32*len(c.Sig.Inputs))
	copy(base, sel[:])
	pool := [][]byte{base}
	covered := make(map[uint64]bool)

	in := evm.NewInterpreter(c.Code)
	for trial := 1; trial <= budget; trial++ {
		input := mutateBytes(r, pool[r.Intn(len(pool))])
		res := in.Execute(evm.CallContext{CallData: input, CollectCoverage: true})
		if res.Err == nil && in.Storage()[beaconSlot].Eq(evm.OneWord) {
			return Outcome{Triggered: true, Trials: trial}
		}
		fresh := false
		for pc := range res.Coverage {
			if !covered[pc] {
				covered[pc] = true
				fresh = true
			}
		}
		if fresh && len(pool) < 64 {
			pool = append(pool, input)
		}
	}
	return Outcome{Trials: budget}
}

// mutateBytes applies one random byte-level mutation.
func mutateBytes(r *rand.Rand, seed []byte) []byte {
	out := append([]byte(nil), seed...)
	if len(out) <= 4 {
		return out
	}
	pos := 4 + r.Intn(len(out)-4)
	switch r.Intn(4) {
	case 0:
		out[pos] = byte(r.Intn(256))
	case 1:
		out[pos] ^= 1 << r.Intn(8)
	case 2:
		out[pos] = 0
	default:
		// Rewrite the low byte of a random 32-byte slot with a small value
		// (hits modular trigger conditions).
		slot := (pos - 4) / 32
		low := 4 + slot*32 + 31
		if low < len(out) {
			out[low] = byte(r.Intn(16))
		}
	}
	return out
}
