// Package fuzz reproduces the paper's §6.2 experiment: how much knowing
// function signatures helps a smart-contract fuzzer.
//
// It provides a generator of seeded-bug contracts (each hides a bug behind
// the argument-validity checks real contracts perform), and two fuzzers
// that differ in exactly one variable: ContractFuzzer mutates type-aware
// inputs built from the recovered signature, ContractFuzzer⁻ feeds random
// byte sequences after the selector. The bug beacon is a storage write the
// concrete interpreter observes.
package fuzz

import (
	"fmt"
	"math/rand"

	"sigrec/internal/abi"
	"sigrec/internal/evm"
)

// beaconSlot is the storage slot the seeded bug writes when triggered.
var beaconSlot = evm.WordFromUint64(0xb06)

// BugContract is one seeded-bug target.
type BugContract struct {
	// Sig is the single public function.
	Sig abi.Signature
	// Code is the runtime bytecode.
	Code []byte
	// Modulus and Residue define the bug trigger: the first integer-like
	// argument v triggers when v % Modulus == Residue (after the body's
	// validity checks pass).
	Modulus uint64
	Residue uint64
	// Guarded reports whether any parameter carries a validity check that
	// random byte sequences essentially never satisfy.
	Guarded bool
}

// GenerateBugContracts builds n deterministic targets. guardedShare
// controls how many have hard validity checks (the knob that sets the
// typed-vs-random gap).
func GenerateBugContracts(seed int64, n int, guardedShare float64) ([]BugContract, error) {
	r := rand.New(rand.NewSource(seed))
	out := make([]BugContract, 0, n)
	for i := 0; i < n; i++ {
		guarded := r.Float64() < guardedShare
		bc, err := buildBugContract(r, i, guarded)
		if err != nil {
			return nil, fmt.Errorf("fuzz: contract %d: %w", i, err)
		}
		out = append(out, bc)
	}
	return out, nil
}

// buildBugContract assembles a one-function contract: selector dispatch,
// per-parameter validity checks, then the bug trigger on the first
// integer-like parameter.
func buildBugContract(r *rand.Rand, idx int, guarded bool) (BugContract, error) {
	sig := abi.Signature{Name: fmt.Sprintf("target%d", idx)}
	// First parameter carries the bug trigger.
	sig.Inputs = append(sig.Inputs, abi.Uint(256))
	extra := r.Intn(3)
	for p := 0; p < extra; p++ {
		if guarded {
			switch r.Intn(3) {
			case 0:
				sig.Inputs = append(sig.Inputs, abi.Address())
			case 1:
				sig.Inputs = append(sig.Inputs, abi.Bool())
			default:
				sig.Inputs = append(sig.Inputs, abi.Uint(32))
			}
		} else {
			sig.Inputs = append(sig.Inputs, abi.Uint(256))
		}
	}
	if guarded && extra == 0 {
		sig.Inputs = append(sig.Inputs, abi.Address())
	}
	modulus := uint64(6 + r.Intn(6))
	residue := uint64(r.Intn(int(modulus)))

	a := evm.NewAssembler()
	fail := a.NewLabel()
	body := a.NewLabel()
	// Dispatcher.
	sel := sig.Selector()
	a.Push(0).Op(evm.CALLDATALOAD)
	a.Push(0xe0).Op(evm.SHR)
	a.PushBytes(sel[:]).Op(evm.EQ)
	a.JumpI(body)
	a.Op(evm.STOP)
	a.Bind(body)
	// The ABI decoder's calldatasize check (solc >= 0.5 semantics).
	need := uint64(4 + 32*len(sig.Inputs))
	a.Op(evm.CALLDATASIZE)
	a.Push(need)
	a.Op(evm.GT) // need > calldatasize
	a.JumpI(fail)
	// Validity checks, as a defensive contract would require().
	for p, t := range sig.Inputs {
		off := uint64(4 + 32*p)
		switch t.Kind {
		case abi.KindUint:
			if t.Bits < 256 {
				// require(v >> bits == 0)
				a.Push(off).Op(evm.CALLDATALOAD)
				a.Push(uint64(t.Bits)).Op(evm.SHR)
				a.JumpI(fail)
			} else if p > 0 {
				// Unchecked parameters are still read by the body (so
				// signature recovery sees them, as with real contracts).
				a.Push(off).Op(evm.CALLDATALOAD)
				a.Push(uint64(p)).Op(evm.SSTORE)
			}
		case abi.KindAddress:
			a.Push(off).Op(evm.CALLDATALOAD)
			a.Push(160).Op(evm.SHR)
			a.JumpI(fail)
		case abi.KindBool:
			// require(v < 2)
			a.Push(2)
			a.Push(off).Op(evm.CALLDATALOAD)
			a.Op(evm.LT).Op(evm.ISZERO)
			a.JumpI(fail)
		}
	}
	// Bug trigger: first argument v, beacon write when v % m == k.
	hit := a.NewLabel()
	a.Push(4).Op(evm.CALLDATALOAD)
	a.Push(modulus).Op(evm.SWAP1).Op(evm.MOD) // v % m
	a.Push(residue).Op(evm.EQ)
	a.JumpI(hit)
	a.Op(evm.STOP)
	a.Bind(hit)
	a.Push(1)
	a.PushWord(beaconSlot)
	a.Op(evm.SSTORE)
	a.Op(evm.STOP)
	a.Bind(fail)
	a.Push(0).Push(0).Op(evm.REVERT)
	code, err := a.Assemble()
	if err != nil {
		return BugContract{}, err
	}
	return BugContract{Sig: sig, Code: code, Modulus: modulus, Residue: residue, Guarded: guarded}, nil
}

// Outcome is one fuzzing campaign's result on one contract.
type Outcome struct {
	Triggered bool
	// Trials is how many inputs were executed before the bug fired (or the
	// budget, when it did not).
	Trials int
}

// Fuzzer drives inputs against a target.
type Fuzzer interface {
	Name() string
	// Run executes up to budget trials and reports whether the seeded bug
	// was triggered.
	Run(c BugContract, budget int, seed int64) Outcome
}

// Typed is ContractFuzzer with SigRec's signatures: it generates
// well-formed arguments for the recovered parameter types and mutates with
// boundary values.
type Typed struct {
	// Inputs overrides the parameter types (normally SigRec's recovery);
	// nil falls back to the ground-truth signature, which models a perfect
	// recovery.
	Inputs map[string][]abi.Type
}

var _ Fuzzer = (*Typed)(nil)

// Name implements Fuzzer.
func (f *Typed) Name() string { return "ContractFuzzer" }

// Run implements Fuzzer.
func (f *Typed) Run(c BugContract, budget int, seed int64) Outcome {
	r := rand.New(rand.NewSource(seed))
	types := c.Sig.Inputs
	if f.Inputs != nil {
		if custom, ok := f.Inputs[c.Sig.Canonical()]; ok {
			types = custom
		}
	}
	sig := abi.Signature{Name: c.Sig.Name, Inputs: types}
	for trial := 1; trial <= budget; trial++ {
		vals := make([]abi.Value, len(types))
		for i, t := range types {
			vals[i] = f.mutate(r, t)
		}
		data, err := abi.EncodeCall(sig, vals)
		if err != nil {
			continue
		}
		// The recovered selector must match the true one; re-stamp it so a
		// name mismatch cannot interfere (ids come from the dispatcher).
		trueSel := c.Sig.Selector()
		copy(data[:4], trueSel[:])
		if execTriggers(c.Code, data) {
			return Outcome{Triggered: true, Trials: trial}
		}
	}
	return Outcome{Trials: budget}
}

// mutate draws a type-aware value: random, or a boundary value.
func (f *Typed) mutate(r *rand.Rand, t abi.Type) abi.Value {
	if t.Kind == abi.KindUint || t.Kind == abi.KindInt {
		switch r.Intn(4) {
		case 0:
			return evm.WordFromUint64(uint64(r.Intn(16))) // small boundary
		case 1:
			return evm.WordFromUint64(r.Uint64())
		}
	}
	return abi.RandomValue(r, t)
}

// Random is ContractFuzzer⁻: the same budget, but inputs are the selector
// followed by random byte sequences (no type information).
type Random struct{}

var _ Fuzzer = (*Random)(nil)

// Name implements Fuzzer.
func (f *Random) Name() string { return "ContractFuzzer-" }

// Run implements Fuzzer.
func (f *Random) Run(c BugContract, budget int, seed int64) Outcome {
	r := rand.New(rand.NewSource(seed))
	sel := c.Sig.Selector()
	for trial := 1; trial <= budget; trial++ {
		n := 32 * (1 + r.Intn(6))
		data := make([]byte, 4+n)
		copy(data, sel[:])
		r.Read(data[4:])
		if execTriggers(c.Code, data) {
			return Outcome{Triggered: true, Trials: trial}
		}
	}
	return Outcome{Trials: budget}
}

// execTriggers runs one input and checks the bug beacon.
func execTriggers(code, callData []byte) bool {
	in := evm.NewInterpreter(code)
	res := in.Execute(evm.CallContext{CallData: callData})
	if res.Err != nil {
		return false
	}
	return in.Storage()[beaconSlot].Eq(evm.OneWord)
}

// Campaign runs a fuzzer over a fleet of targets.
type Campaign struct {
	Found  int
	Total  int
	Trials int
}

// RunCampaign fuzzes every contract with the given per-target budget.
func RunCampaign(f Fuzzer, targets []BugContract, budget int, seed int64) Campaign {
	var c Campaign
	for i, bc := range targets {
		out := f.Run(bc, budget, seed+int64(i))
		c.Total++
		c.Trials += out.Trials
		if out.Triggered {
			c.Found++
		}
	}
	return c
}
