// Package rulelearn reproduces the paper's §3.1 rule-generation pipeline as
// an executable artifact. The paper derives its 31 rules in five steps; the
// first four are automated and implemented here:
//
//  1. generate single-parameter smart contracts for every type (all widths,
//     all dimensions) and compile them;
//  2. collect each parameter's accessing pattern (the instruction sequence
//     that touches the call data);
//  3. extract the common accessing pattern across a type family (e.g. the
//     subsequence shared by uint8, uint16, ..., uint256);
//  4. symbolically characterize the pattern (delegated to core's TASE).
//
// Step 5 -- summarizing rules -- is the human step; its output is the rule
// set in internal/core, and the tests here verify the paper's commonality
// claims hold on our substrate: every uintM shares the CALLDATALOAD+AND
// skeleton, every static array family shares its loop skeleton, and so on.
package rulelearn

import (
	"fmt"

	"sigrec/internal/abi"
	"sigrec/internal/evm"
	"sigrec/internal/solc"
)

// Pattern is one parameter's accessing pattern: the opcode sequence, in
// execution order, that participates in reading the parameter. Immediates
// are abstracted away so patterns compare across widths and offsets.
type Pattern []evm.Op

// String renders the mnemonic sequence.
func (p Pattern) String() string {
	out := ""
	for i, op := range p {
		if i > 0 {
			out += " "
		}
		out += op.String()
	}
	return out
}

// Sample is one generated contract and its extracted pattern.
type Sample struct {
	Type    abi.Type
	Mode    solc.Mode
	Code    []byte
	Pattern Pattern
}

// CollectPattern implements steps 1-2 for one parameter type: generate the
// single-parameter contract and extract its accessing pattern.
func CollectPattern(t abi.Type, mode solc.Mode) (Sample, error) {
	sig := abi.Signature{Name: "learn", Inputs: []abi.Type{t}}
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: mode},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		return Sample{}, fmt.Errorf("rulelearn: %s: %w", t.Display(), err)
	}
	return Sample{
		Type:    t,
		Mode:    mode,
		Code:    code,
		Pattern: extractPattern(code),
	}, nil
}

// extractPattern walks the body instructions and keeps the call-data-
// relevant opcodes: the loads and copies themselves plus the masking,
// bound-check, and loop scaffolding around them. Offsets and mask widths
// are immaterial (they are the *parameters* of the pattern, not its shape).
func extractPattern(code []byte) Pattern {
	var out Pattern
	for _, ins := range evm.Disassemble(code).Instructions {
		switch ins.Op {
		case evm.CALLDATALOAD, evm.CALLDATACOPY,
			evm.AND, evm.SIGNEXTEND, evm.ISZERO, evm.BYTE,
			evm.SDIV, evm.SLT, evm.SGT,
			evm.LT, evm.GT, evm.MUL, evm.DIV,
			evm.MLOAD, evm.MSTORE, evm.JUMPI:
			out = append(out, ins.Op)
		}
	}
	return out
}

// CommonPattern implements step 3: the longest common subsequence of the
// given patterns, the paper's "instruction sequence that appears in all
// these accessing patterns".
func CommonPattern(patterns []Pattern) Pattern {
	if len(patterns) == 0 {
		return nil
	}
	common := patterns[0]
	for _, p := range patterns[1:] {
		common = lcs(common, p)
		if len(common) == 0 {
			return nil
		}
	}
	return common
}

// lcs computes the longest common subsequence of two opcode sequences.
func lcs(a, b Pattern) Pattern {
	n, m := len(a), len(b)
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	out := make(Pattern, 0, dp[0][0])
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return out
}

// Subtract implements the paper's residual construction: the instructions
// in the common pattern of a composite type that are *not* explained by its
// element type's pattern (multiset difference, order-preserving on the
// composite side). The residual is the structural skeleton -- the loop and
// offset machinery a dimension adds.
func Subtract(composite, element Pattern) Pattern {
	remaining := make(map[evm.Op]int)
	for _, op := range element {
		remaining[op]++
	}
	var out Pattern
	for _, op := range composite {
		if remaining[op] > 0 {
			remaining[op]--
			continue
		}
		out = append(out, op)
	}
	return out
}

// Family runs the pipeline over a family of types (steps 1-3), returning
// the per-type samples and their common pattern.
func Family(types []abi.Type, mode solc.Mode) ([]Sample, Pattern, error) {
	samples := make([]Sample, 0, len(types))
	patterns := make([]Pattern, 0, len(types))
	for _, t := range types {
		s, err := CollectPattern(t, mode)
		if err != nil {
			return nil, nil, err
		}
		samples = append(samples, s)
		patterns = append(patterns, s.Pattern)
	}
	return samples, CommonPattern(patterns), nil
}

// contains reports whether the pattern has the opcode.
func (p Pattern) contains(op evm.Op) bool {
	for _, x := range p {
		if x == op {
			return true
		}
	}
	return false
}

// Has reports whether every listed opcode occurs in the pattern.
func (p Pattern) Has(ops ...evm.Op) bool {
	for _, op := range ops {
		if !p.contains(op) {
			return false
		}
	}
	return true
}
