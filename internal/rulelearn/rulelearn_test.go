package rulelearn

import (
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/evm"
	"sigrec/internal/solc"
)

// TestUintFamilyCommonPattern reproduces §3.1's first derivation: the
// common accessing pattern of uint8..uint248 is CALLDATALOAD followed by an
// AND mask -- the skeleton rule R11 keys on.
func TestUintFamilyCommonPattern(t *testing.T) {
	var family []abi.Type
	for bits := 8; bits < 256; bits += 8 {
		family = append(family, abi.Uint(bits))
	}
	_, common, err := Family(family, solc.External)
	if err != nil {
		t.Fatal(err)
	}
	if !common.Has(evm.CALLDATALOAD, evm.AND) {
		t.Errorf("uint family common pattern %s lacks CDL+AND", common)
	}
	if common.Has(evm.SIGNEXTEND) {
		t.Errorf("uint family pattern must not contain SIGNEXTEND: %s", common)
	}
}

// TestIntFamilyUsesSignExtend: intM (M<256) shares CALLDATALOAD+SIGNEXTEND.
func TestIntFamilyUsesSignExtend(t *testing.T) {
	var family []abi.Type
	for bits := 8; bits < 256; bits += 8 {
		family = append(family, abi.Int(bits))
	}
	_, common, err := Family(family, solc.External)
	if err != nil {
		t.Fatal(err)
	}
	if !common.Has(evm.CALLDATALOAD, evm.SIGNEXTEND) {
		t.Errorf("int family common pattern %s lacks CDL+SIGNEXTEND", common)
	}
}

// TestStaticArrayResidual reproduces the one-dimensional static-array
// derivation: subtracting the element's pattern from T[N]'s common pattern
// leaves the loop skeleton (bound check LT + JUMPI and the element loads).
func TestStaticArrayResidual(t *testing.T) {
	elemSample, err := CollectPattern(abi.Uint(8), solc.External)
	if err != nil {
		t.Fatal(err)
	}
	var family []abi.Type
	for n := 1; n <= 10; n++ {
		family = append(family, abi.ArrayOf(abi.Uint(8), n))
	}
	_, common, err := Family(family, solc.External)
	if err != nil {
		t.Fatal(err)
	}
	residual := Subtract(common, elemSample.Pattern)
	if !residual.Has(evm.LT, evm.JUMPI) {
		t.Errorf("static-array residual %s lacks the bound-check skeleton", residual)
	}
}

// TestDynamicArrayPublicResidual: the paper's dynamic-array derivation --
// the pattern of uint8[] minus uint8's leaves the offset/num reads, the
// copy, and the size multiplication.
func TestDynamicArrayPublicResidual(t *testing.T) {
	elemSample, err := CollectPattern(abi.Uint(8), solc.Public)
	if err != nil {
		t.Fatal(err)
	}
	arrSample, err := CollectPattern(abi.SliceOf(abi.Uint(8)), solc.Public)
	if err != nil {
		t.Fatal(err)
	}
	residual := Subtract(arrSample.Pattern, elemSample.Pattern)
	if !residual.Has(evm.CALLDATALOAD, evm.CALLDATACOPY, evm.MUL) {
		t.Errorf("dynamic-array residual %s lacks offset/copy/size skeleton", residual)
	}
}

// TestBytesVsArrayLengthComputation: the copy-length computations differ
// exactly as rule R8 requires -- bytes rounds up with DIV, arrays multiply.
func TestBytesVsArrayLengthComputation(t *testing.T) {
	bytesSample, err := CollectPattern(abi.Bytes(), solc.Public)
	if err != nil {
		t.Fatal(err)
	}
	arrSample, err := CollectPattern(abi.SliceOf(abi.Uint(256)), solc.Public)
	if err != nil {
		t.Fatal(err)
	}
	if !bytesSample.Pattern.Has(evm.DIV) {
		t.Errorf("bytes pattern %s lacks the round-up DIV", bytesSample.Pattern)
	}
	if arrSample.Pattern.Has(evm.DIV) {
		t.Errorf("array pattern %s should not divide", arrSample.Pattern)
	}
}

// TestMultiDimGrowsLoops: each added dimension adds a bound check, which is
// how step 5 generalizes rules R2/R3 "for all possible dimensions".
func TestMultiDimGrowsLoops(t *testing.T) {
	counts := make([]int, 0, 3)
	ty := abi.Uint(256)
	for dim := 1; dim <= 3; dim++ {
		ty = abi.ArrayOf(ty, 2)
		s, err := CollectPattern(ty, solc.External)
		if err != nil {
			t.Fatal(err)
		}
		lt := 0
		for _, op := range s.Pattern {
			if op == evm.LT {
				lt++
			}
		}
		counts = append(counts, lt)
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Errorf("bound checks do not grow with dimension: %v", counts)
	}
}

// TestLCSProperties sanity-checks the subsequence machinery.
func TestLCSProperties(t *testing.T) {
	a := Pattern{evm.CALLDATALOAD, evm.AND, evm.MSTORE}
	b := Pattern{evm.CALLDATALOAD, evm.MSTORE}
	got := lcs(a, b)
	if got.String() != "CALLDATALOAD MSTORE" {
		t.Errorf("lcs = %s", got)
	}
	if len(lcs(a, nil)) != 0 {
		t.Error("lcs with empty must be empty")
	}
	if CommonPattern(nil) != nil {
		t.Error("CommonPattern(nil) must be nil")
	}
	self := CommonPattern([]Pattern{a, a})
	if self.String() != a.String() {
		t.Errorf("self-common = %s", self)
	}
}

func TestSubtractMultiset(t *testing.T) {
	comp := Pattern{evm.CALLDATALOAD, evm.CALLDATALOAD, evm.AND}
	elem := Pattern{evm.CALLDATALOAD}
	got := Subtract(comp, elem)
	if got.String() != "CALLDATALOAD AND" {
		t.Errorf("residual = %s", got)
	}
}
