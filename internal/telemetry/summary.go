package telemetry

import (
	"math"
	"sort"
	"sync"
)

// Quantile pairs a target quantile with its permitted rank error. A
// Summary tracking {0.99, 0.001} answers Query(0.99) with a value whose
// true rank is within ±0.1% of the 99th percentile.
type Quantile struct {
	Q   float64
	Err float64
}

// DefaultObjectives are the targeted quantiles a Summary tracks unless the
// caller overrides them: the p50/p90/p95/p99 operators actually read, with
// tighter error toward the tail where it matters.
var DefaultObjectives = []Quantile{
	{Q: 0.5, Err: 0.05},
	{Q: 0.9, Err: 0.01},
	{Q: 0.95, Err: 0.005},
	{Q: 0.99, Err: 0.001},
}

// Summary is a streaming quantile sketch over microsecond observations:
// the CKMS targeted-quantile algorithm (Cormode, Korn, Muthukrishnan,
// Srivastava, "Effective Computation of Biased Quantiles over Data
// Streams"), which keeps a compressed sample list whose size depends on
// the error targets, not on the stream length. Observations are buffered
// and folded into the sketch in batches, so the common-case Observe is an
// append under a mutex; /metrics exports the tracked quantiles as a
// Prometheus summary family.
type Summary struct {
	mu         sync.Mutex
	objectives []Quantile
	samples    []ckmsSample // sorted by value
	buf        []float64
	n          int // observations already merged into samples
	sum        float64
	count      uint64
}

// ckmsSample is one compressed sample: value, the count of observations it
// absorbs (g), and the rank uncertainty it carries (delta).
type ckmsSample struct {
	v     float64
	g     int
	delta int
}

// summaryBufCap is the batch size at which buffered observations are
// merged into the sketch; larger batches amortize the merge sort.
const summaryBufCap = 500

// NewSummary returns a Summary tracking the given quantile objectives
// (nil selects DefaultObjectives).
func NewSummary(objectives []Quantile) *Summary {
	if len(objectives) == 0 {
		objectives = DefaultObjectives
	}
	obj := append([]Quantile(nil), objectives...)
	sort.Slice(obj, func(i, j int) bool { return obj[i].Q < obj[j].Q })
	return &Summary{objectives: obj}
}

// Observe records one microsecond value.
func (s *Summary) Observe(us uint64) {
	v := float64(us)
	s.mu.Lock()
	s.sum += v
	s.count++
	s.buf = append(s.buf, v)
	if len(s.buf) >= summaryBufCap {
		s.flushLocked()
	}
	s.mu.Unlock()
}

// invariant is the CKMS targeted-quantile error function: the permitted
// rank slack at rank r in a stream of n, minimized over the objectives.
func (s *Summary) invariant(r, n float64) float64 {
	m := math.MaxFloat64
	for _, q := range s.objectives {
		var f float64
		if r <= q.Q*n {
			f = 2 * q.Err * (n - r) / (1 - q.Q)
		} else {
			f = 2 * q.Err * r / q.Q
		}
		if f < m {
			m = f
		}
	}
	return m
}

// flushLocked merges the buffered observations into the sample list and
// compresses it. Caller holds s.mu.
func (s *Summary) flushLocked() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	merged := make([]ckmsSample, 0, len(s.samples)+len(s.buf))
	var r float64 // rank before the insertion point
	i := 0
	for _, v := range s.buf {
		for i < len(s.samples) && s.samples[i].v <= v {
			r += float64(s.samples[i].g)
			merged = append(merged, s.samples[i])
			i++
		}
		delta := 0
		if i > 0 && i < len(s.samples) {
			// Inserting between existing samples: the new sample inherits
			// the local rank uncertainty.
			delta = int(math.Floor(s.invariant(r, float64(s.n)))) - 1
			if delta < 0 {
				delta = 0
			}
		}
		merged = append(merged, ckmsSample{v: v, g: 1, delta: delta})
		s.n++
	}
	merged = append(merged, s.samples[i:]...)
	s.samples = merged
	s.buf = s.buf[:0]
	s.compressLocked()
}

// compressLocked merges adjacent samples whose combined width stays within
// the invariant, bounding the sketch size. Caller holds s.mu.
func (s *Summary) compressLocked() {
	if len(s.samples) < 3 {
		return
	}
	out := s.samples[:0]
	// Walk from the smallest value, accumulating rank; a sample may be
	// absorbed into its successor when their merged error fits.
	r := 0.0
	n := float64(s.n)
	for i := 0; i < len(s.samples)-1; i++ {
		cur, next := s.samples[i], s.samples[i+1]
		if float64(cur.g+next.g+next.delta) <= s.invariant(r, n) {
			// Absorb cur into next.
			s.samples[i+1].g += cur.g
		} else {
			out = append(out, cur)
		}
		r += float64(cur.g)
	}
	out = append(out, s.samples[len(s.samples)-1])
	s.samples = out
}

// Query returns the tracked estimate for quantile q (which should be one
// of the objectives). It returns 0 when nothing has been observed.
func (s *Summary) Query(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	if len(s.samples) == 0 {
		return 0
	}
	n := float64(s.n)
	t := q*n + s.invariant(q*n, n)/2
	r := 0.0
	for i := 0; i < len(s.samples)-1; i++ {
		r += float64(s.samples[i].g)
		if r+float64(s.samples[i+1].g+s.samples[i+1].delta) > t {
			return s.samples[i].v
		}
	}
	return s.samples[len(s.samples)-1].v
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// QuantileValue is one exported quantile of a summary snapshot.
type QuantileValue struct {
	Q float64
	V float64
}

// SummarySnapshot is the point-in-time state of a Summary: the tracked
// quantile estimates plus the running sum and count.
type SummarySnapshot struct {
	Quantiles []QuantileValue
	// Sum is the total of all observed values, microseconds.
	Sum float64
	// Count is the number of observations.
	Count uint64
}

// Snapshot exports the tracked quantile estimates with the running sum and
// count — the read side consumers outside the registry walk (the SLO
// latency source, the OTLP metrics mapping) use.
func (s *Summary) Snapshot() SummarySnapshot { return s.snapshot() }

// snapshot exports the tracked quantiles.
func (s *Summary) snapshot() SummarySnapshot {
	s.mu.Lock()
	s.flushLocked()
	objectives := s.objectives
	n := float64(s.n)
	samples := s.samples
	snap := SummarySnapshot{Sum: s.sum, Count: s.count}
	// Query inline (the lock is already held): same walk as Query.
	for _, o := range objectives {
		var v float64
		if len(samples) > 0 {
			t := o.Q*n + s.invariant(o.Q*n, n)/2
			r := 0.0
			v = samples[len(samples)-1].v
			for i := 0; i < len(samples)-1; i++ {
				r += float64(samples[i].g)
				if r+float64(samples[i+1].g+samples[i+1].delta) > t {
					v = samples[i].v
					break
				}
			}
		}
		snap.Quantiles = append(snap.Quantiles, QuantileValue{Q: o.Q, V: v})
	}
	s.mu.Unlock()
	return snap
}
