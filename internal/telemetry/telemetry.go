// Package telemetry is a dependency-free metrics substrate for the
// recovery pipeline: atomic counters, gauges, and fixed-bucket monotonic
// histograms, with a point-in-time Snapshot and a Prometheus-flavoured
// text exposition. All mutation paths are lock-free (a registry lock is
// taken only on first metric registration), so instruments can sit on the
// TASE hot path without measurable overhead.
//
// Histogram buckets are microsecond upper bounds chosen to match the E3
// time-distribution buckets of the paper's Fig. 17 (<1ms, 1-10ms,
// 10-100ms, >=100ms), so the served metrics line up with the evaluation.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// E3Buckets is the default histogram bucket layout: upper bounds in
// microseconds mirroring the paper's Fig. 17 recovery-time buckets. The
// implicit final bucket is +Inf.
var E3Buckets = []uint64{1_000, 10_000, 100_000}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float64 value (bit-cast through an atomic
// word), for quantities that are genuinely fractional — burn rates, error
// budgets — where an integer gauge would round away the signal.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v. NaN and infinities are clamped to zero so the exposition
// stays parseable by strict scrapers.
func (g *FloatGauge) Set(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	g.bits.Store(math.Float64bits(v))
}

// Load returns the current value.
func (g *FloatGauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// FloatGaugeVec is a family of float gauges distinguished by one label
// (e.g. sigrec_slo_burn_rate{slo="availability:1h"}). With resolves a
// label value to its gauge; hot paths should resolve once and cache the
// *FloatGauge.
type FloatGaugeVec struct {
	label string
	mu    sync.RWMutex
	m     map[string]*FloatGauge
}

// With returns the gauge for the label value, creating it on first use.
func (v *FloatGaugeVec) With(value string) *FloatGauge {
	v.mu.RLock()
	g, ok := v.m[value]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok = v.m[value]; !ok {
		g = &FloatGauge{}
		v.m[value] = g
	}
	return g
}

// CounterVec is a family of counters distinguished by one label (e.g.
// sigrec_rule_fired_total{rule="R11"}). With resolves a label value to its
// counter; hot paths should resolve once and cache the *Counter, after
// which increments are single atomic adds exactly like a plain Counter.
type CounterVec struct {
	label string
	mu    sync.RWMutex
	m     map[string]*Counter
}

// With returns the counter for the label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.m[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.m[value]; !ok {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

// GaugeVec is a family of gauges distinguished by one label (e.g.
// cluster_shard_healthy{shard="s1"}). With resolves a label value to its
// gauge; hot paths should resolve once and cache the *Gauge, after which
// mutations are single atomic stores exactly like a plain Gauge.
type GaugeVec struct {
	label string
	mu    sync.RWMutex
	m     map[string]*Gauge
}

// With returns the gauge for the label value, creating it on first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.RLock()
	g, ok := v.m[value]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok = v.m[value]; !ok {
		g = &Gauge{}
		v.m[value] = g
	}
	return g
}

// ExemplarLabel is the label name exemplars are exposed under: a request
// id linking a histogram bucket back to its trace in the flight recorder.
const ExemplarLabel = "request_id"

// Exemplar ties one recent observation to the request that produced it,
// attached to the histogram bucket the observation fell into. Exposed in
// OpenMetrics style (`... # {request_id="..."} <value>`) so a latency
// spike on /metrics links directly to a span tree at /debug/slowest.
type Exemplar struct {
	// ID is the request id of the exemplified observation.
	ID string
	// Value is the observed value, microseconds.
	Value uint64
}

// Histogram is a fixed-bucket histogram of microsecond observations. The
// per-bucket counts are stored non-cumulatively and cumulated at snapshot
// time, which keeps Observe to a single atomic add per call.
type Histogram struct {
	bounds []uint64 // sorted upper bounds, microseconds
	counts []atomic.Uint64
	sum    atomic.Uint64
	count  atomic.Uint64
	// exemplars holds the most recent identified observation per bucket
	// (pointer swap on write, nil when the bucket never saw one).
	exemplars []atomic.Pointer[Exemplar]
}

func newHistogram(bounds []uint64) *Histogram {
	b := append([]uint64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe records one microsecond value.
func (h *Histogram) Observe(us uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return us <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(us)
	h.count.Add(1)
}

// ObserveExemplar is Observe plus an exemplar: the request id is retained
// as the bucket's most recent exemplar (one pointer store; empty ids
// degrade to a plain Observe).
func (h *Histogram) ObserveExemplar(us uint64, requestID string) {
	i := sort.Search(len(h.bounds), func(i int) bool { return us <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(us)
	h.count.Add(1)
	if requestID != "" {
		h.exemplars[i].Store(&Exemplar{ID: requestID, Value: us})
	}
}

// ObserveDuration records a duration, clamped at zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d.Microseconds()))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistogramSnapshot is the point-in-time state of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds in microseconds; the final
	// implicit bucket is +Inf.
	Bounds []uint64
	// Cumulative holds one entry per bound plus the +Inf bucket; entry i
	// counts observations <= Bounds[i] (monotone non-decreasing, last
	// entry == Count).
	Cumulative []uint64
	// Sum is the total of all observed values, microseconds.
	Sum uint64
	// Count is the number of observations.
	Count uint64
	// Exemplars holds the most recent identified observation per bucket
	// (parallel to Cumulative; nil entries mean no exemplar yet).
	Exemplars []*Exemplar
}

// LabeledCounterSnapshot is the point-in-time state of a CounterVec: the
// label name plus one value per observed label value.
type LabeledCounterSnapshot struct {
	Label  string
	Values map[string]uint64
}

// LabeledGaugeSnapshot is the point-in-time state of a GaugeVec.
type LabeledGaugeSnapshot struct {
	Label  string
	Values map[string]int64
}

// LabeledFloatGaugeSnapshot is the point-in-time state of a FloatGaugeVec.
type LabeledFloatGaugeSnapshot struct {
	Label  string
	Values map[string]float64
}

// Snapshot is a consistent-enough point-in-time copy of a registry. (Each
// metric is read atomically; cross-metric skew under concurrent writers is
// bounded by the snapshot walk, which carries no locks on the write path.)
type Snapshot struct {
	Counters           map[string]uint64
	Gauges             map[string]int64
	FloatGauges        map[string]float64
	Histograms         map[string]HistogramSnapshot
	Summaries          map[string]SummarySnapshot
	LabeledCounters    map[string]LabeledCounterSnapshot
	LabeledGauges      map[string]LabeledGaugeSnapshot
	LabeledFloatGauges map[string]LabeledFloatGaugeSnapshot
	// Infos maps info-metric names to their pre-rendered, escaped label
	// block (`{k="v",...}`); each exposes as a gauge with constant value 1.
	Infos map[string]string
	// InfoLabels carries the same info metrics as raw key/value maps, for
	// exporters (OTLP) that re-encode labels as structured attributes.
	InfoLabels map[string]map[string]string
	// Help maps metric names to their HELP text.
	Help map[string]string
}

// Registry holds named metrics. Names must be unique across metric kinds
// (a counter and a gauge cannot share a name). The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu             sync.RWMutex
	counters       map[string]*Counter
	gauges         map[string]*Gauge
	floatGauges    map[string]*FloatGauge
	histograms     map[string]*Histogram
	summaries      map[string]*Summary
	counterVecs    map[string]*CounterVec
	gaugeVecs      map[string]*GaugeVec
	floatGaugeVecs map[string]*FloatGaugeVec
	infos          map[string]string
	infoLabels     map[string]map[string]string
	help           map[string]string
	// hooks run (outside the lock) at the start of every Snapshot; used to
	// refresh pull-style gauges such as the Go runtime self-metrics.
	hooksMu sync.Mutex
	hooks   []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:       make(map[string]*Counter),
		gauges:         make(map[string]*Gauge),
		floatGauges:    make(map[string]*FloatGauge),
		histograms:     make(map[string]*Histogram),
		summaries:      make(map[string]*Summary),
		counterVecs:    make(map[string]*CounterVec),
		gaugeVecs:      make(map[string]*GaugeVec),
		floatGaugeVecs: make(map[string]*FloatGaugeVec),
		infos:          make(map[string]string),
		infoLabels:     make(map[string]map[string]string),
		help:           make(map[string]string),
	}
}

// OnSnapshot registers a hook invoked at the start of every Snapshot (and
// therefore every exposition), before any metric is read. Hooks refresh
// scrape-time gauges — runtime self-metrics, derived rates — without a
// background poller.
func (r *Registry) OnSnapshot(f func()) {
	r.hooksMu.Lock()
	r.hooks = append(r.hooks, f)
	r.hooksMu.Unlock()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.RLock()
	g, ok := r.floatGauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.floatGauges[name]; !ok {
		g = &FloatGauge{}
		r.floatGauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// microsecond bucket bounds on first use (nil selects E3Buckets). Bounds
// passed on later calls for the same name are ignored.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	if bounds == nil {
		bounds = E3Buckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Summary returns the named streaming-quantile summary, creating it with
// the given objectives on first use (nil selects DefaultObjectives;
// objectives passed on later calls for the same name are ignored).
func (r *Registry) Summary(name string, objectives []Quantile) *Summary {
	r.mu.RLock()
	s, ok := r.summaries[name]
	r.mu.RUnlock()
	if ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok = r.summaries[name]; !ok {
		s = NewSummary(objectives)
		r.summaries[name] = s
	}
	return s
}

// CounterVec returns the named one-label counter family, creating it with
// the given label name on first use (the label passed on later calls for
// the same name is ignored).
func (r *Registry) CounterVec(name, label string) *CounterVec {
	r.mu.RLock()
	v, ok := r.counterVecs[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok = r.counterVecs[name]; !ok {
		v = &CounterVec{label: label, m: make(map[string]*Counter)}
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns the named one-label gauge family, creating it with the
// given label name on first use (the label passed on later calls for the
// same name is ignored).
func (r *Registry) GaugeVec(name, label string) *GaugeVec {
	r.mu.RLock()
	v, ok := r.gaugeVecs[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok = r.gaugeVecs[name]; !ok {
		v = &GaugeVec{label: label, m: make(map[string]*Gauge)}
		r.gaugeVecs[name] = v
	}
	return v
}

// FloatGaugeVec returns the named one-label float-gauge family, creating
// it with the given label name on first use (the label passed on later
// calls for the same name is ignored).
func (r *Registry) FloatGaugeVec(name, label string) *FloatGaugeVec {
	r.mu.RLock()
	v, ok := r.floatGaugeVecs[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok = r.floatGaugeVecs[name]; !ok {
		v = &FloatGaugeVec{label: label, m: make(map[string]*FloatGauge)}
		r.floatGaugeVecs[name] = v
	}
	return v
}

// SetInfo publishes an info metric: a gauge with constant value 1 whose
// labels carry build/configuration identity (the sigrec_build_info idiom).
// Later calls for the same name replace the labels.
func (r *Registry) SetInfo(name string, labels map[string]string) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, escapeLabel(labels[k]))
	}
	b.WriteByte('}')
	raw := make(map[string]string, len(labels))
	for k, v := range labels {
		raw[k] = v
	}
	r.mu.Lock()
	r.infos[name] = b.String()
	r.infoLabels[name] = raw
	r.mu.Unlock()
}

// SetHelp attaches HELP text to a metric name, emitted before the TYPE
// line in the exposition.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	return labelEscaper.Replace(v)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeHelp escapes HELP text: backslash and newline.
var escapeHelp = strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace

// Snapshot copies the current state of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.hooksMu.Lock()
	hooks := r.hooks
	r.hooksMu.Unlock()
	for _, f := range hooks {
		f()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:           make(map[string]uint64, len(r.counters)),
		Gauges:             make(map[string]int64, len(r.gauges)),
		FloatGauges:        make(map[string]float64, len(r.floatGauges)),
		Histograms:         make(map[string]HistogramSnapshot, len(r.histograms)),
		Summaries:          make(map[string]SummarySnapshot, len(r.summaries)),
		LabeledCounters:    make(map[string]LabeledCounterSnapshot, len(r.counterVecs)),
		LabeledGauges:      make(map[string]LabeledGaugeSnapshot, len(r.gaugeVecs)),
		LabeledFloatGauges: make(map[string]LabeledFloatGaugeSnapshot, len(r.floatGaugeVecs)),
		Infos:              make(map[string]string, len(r.infos)),
		InfoLabels:         make(map[string]map[string]string, len(r.infoLabels)),
		Help:               make(map[string]string, len(r.help)),
	}
	for name, sum := range r.summaries {
		s.Summaries[name] = sum.snapshot()
	}
	for name, v := range r.counterVecs {
		v.mu.RLock()
		ls := LabeledCounterSnapshot{Label: v.label, Values: make(map[string]uint64, len(v.m))}
		for value, c := range v.m {
			ls.Values[value] = c.Load()
		}
		v.mu.RUnlock()
		s.LabeledCounters[name] = ls
	}
	for name, v := range r.gaugeVecs {
		v.mu.RLock()
		ls := LabeledGaugeSnapshot{Label: v.label, Values: make(map[string]int64, len(v.m))}
		for value, g := range v.m {
			ls.Values[value] = g.Load()
		}
		v.mu.RUnlock()
		s.LabeledGauges[name] = ls
	}
	for name, v := range r.floatGaugeVecs {
		v.mu.RLock()
		ls := LabeledFloatGaugeSnapshot{Label: v.label, Values: make(map[string]float64, len(v.m))}
		for value, g := range v.m {
			ls.Values[value] = g.Load()
		}
		v.mu.RUnlock()
		s.LabeledFloatGauges[name] = ls
	}
	for name, rendered := range r.infos {
		s.Infos[name] = rendered
	}
	for name, labels := range r.infoLabels {
		s.InfoLabels[name] = labels
	}
	for name, h := range r.help {
		s.Help[name] = h
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, g := range r.floatGauges {
		s.FloatGauges[name] = g.Load()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds:     append([]uint64(nil), h.bounds...),
			Cumulative: make([]uint64, len(h.counts)),
			Sum:        h.sum.Load(),
			Count:      h.count.Load(),
			Exemplars:  make([]*Exemplar, len(h.counts)),
		}
		var cum uint64
		for i := range h.counts {
			cum += h.counts[i].Load()
			hs.Cumulative[i] = cum
			hs.Exemplars[i] = h.exemplars[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteTo writes the text exposition of the registry's current state.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	return r.Snapshot().WriteTo(w)
}

// WriteTo writes the snapshot in a Prometheus-flavoured text format:
// sorted by metric name, an optional "# HELP" then one "# TYPE" line per
// metric, histograms as cumulative le="..." buckets plus _sum and _count
// (buckets carry an OpenMetrics-style `# {request_id="..."} v` exemplar
// when one was recorded), summaries as one quantile="..." series per
// objective plus _sum and _count, labeled counter families as one series
// per label value sorted by value, info metrics as constant-1 gauges.
// Label values are escaped per the text format, so the output passes the
// strict Lint grammar.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	names := make([]string, 0,
		len(s.Counters)+len(s.Gauges)+len(s.FloatGauges)+len(s.Histograms)+
			len(s.Summaries)+len(s.LabeledCounters)+len(s.LabeledGauges)+
			len(s.LabeledFloatGauges)+len(s.Infos))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.FloatGauges {
		names = append(names, n)
	}
	for n := range s.LabeledFloatGauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	for n := range s.Summaries {
		names = append(names, n)
	}
	for n := range s.LabeledCounters {
		names = append(names, n)
	}
	for n := range s.LabeledGauges {
		names = append(names, n)
	}
	for n := range s.Infos {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		// A labeled family with no series yet would emit a TYPE line with no
		// samples — malformed under the strict grammar — so skip it entirely.
		if lc, ok := s.LabeledCounters[n]; ok && len(lc.Values) == 0 {
			continue
		}
		if lg, ok := s.LabeledGauges[n]; ok && len(lg.Values) == 0 {
			continue
		}
		if lfg, ok := s.LabeledFloatGauges[n]; ok && len(lfg.Values) == 0 {
			continue
		}
		// Likewise an unobserved summary: its quantile values would be
		// meaningless, so the family appears once data exists.
		if su, ok := s.Summaries[n]; ok && su.Count == 0 {
			continue
		}
		if help, ok := s.Help[n]; ok && help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", n, escapeHelp(help))
		}
		switch {
		case hasKey(s.Counters, n):
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[n])
		case hasKey(s.Gauges, n):
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[n])
		case hasKey(s.FloatGauges, n):
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", n, n, formatFloatSample(s.FloatGauges[n]))
		case hasKey(s.LabeledCounters, n):
			lc := s.LabeledCounters[n]
			fmt.Fprintf(&b, "# TYPE %s counter\n", n)
			values := make([]string, 0, len(lc.Values))
			for v := range lc.Values {
				values = append(values, v)
			}
			sort.Strings(values)
			for _, v := range values {
				fmt.Fprintf(&b, "%s{%s=\"%s\"} %d\n", n, lc.Label, escapeLabel(v), lc.Values[v])
			}
		case hasKey(s.LabeledGauges, n):
			lg := s.LabeledGauges[n]
			fmt.Fprintf(&b, "# TYPE %s gauge\n", n)
			values := make([]string, 0, len(lg.Values))
			for v := range lg.Values {
				values = append(values, v)
			}
			sort.Strings(values)
			for _, v := range values {
				fmt.Fprintf(&b, "%s{%s=\"%s\"} %d\n", n, lg.Label, escapeLabel(v), lg.Values[v])
			}
		case hasKey(s.LabeledFloatGauges, n):
			lfg := s.LabeledFloatGauges[n]
			fmt.Fprintf(&b, "# TYPE %s gauge\n", n)
			values := make([]string, 0, len(lfg.Values))
			for v := range lfg.Values {
				values = append(values, v)
			}
			sort.Strings(values)
			for _, v := range values {
				fmt.Fprintf(&b, "%s{%s=\"%s\"} %s\n", n, lfg.Label, escapeLabel(v),
					formatFloatSample(lfg.Values[v]))
			}
		case hasKey(s.Infos, n):
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s%s 1\n", n, n, s.Infos[n])
		case hasKey(s.Summaries, n):
			su := s.Summaries[n]
			fmt.Fprintf(&b, "# TYPE %s summary\n", n)
			for _, q := range su.Quantiles {
				fmt.Fprintf(&b, "%s{quantile=\"%s\"} %s\n", n,
					strconv.FormatFloat(q.Q, 'g', -1, 64),
					strconv.FormatFloat(q.V, 'f', -1, 64))
			}
			fmt.Fprintf(&b, "%s_sum %s\n", n, strconv.FormatFloat(su.Sum, 'f', -1, 64))
			fmt.Fprintf(&b, "%s_count %d\n", n, su.Count)
		default:
			h := s.Histograms[n]
			fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
			for i, bound := range h.Bounds {
				fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d", n, bound, h.Cumulative[i])
				writeExemplar(&b, h.Exemplars, i)
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d", n, h.Count)
			writeExemplar(&b, h.Exemplars, len(h.Bounds))
			b.WriteByte('\n')
			fmt.Fprintf(&b, "%s_sum %d\n", n, h.Sum)
			fmt.Fprintf(&b, "%s_count %d\n", n, h.Count)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the exposition as a string.
func (s Snapshot) String() string {
	var b strings.Builder
	s.WriteTo(&b)
	return b.String()
}

// writeExemplar appends the OpenMetrics-style exemplar suffix for bucket
// i, when one exists: ` # {request_id="<id>"} <value>`.
func writeExemplar(b *strings.Builder, exemplars []*Exemplar, i int) {
	if i >= len(exemplars) || exemplars[i] == nil {
		return
	}
	e := exemplars[i]
	fmt.Fprintf(b, " # {%s=\"%s\"} %d", ExemplarLabel, escapeLabel(e.ID), e.Value)
}

// formatFloatSample renders a float sample value in the plain decimal form
// the strict lint grammar accepts ('f' never emits an exponent).
func formatFloatSample(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

func hasKey[V any](m map[string]V, k string) bool {
	_, ok := m[k]
	return ok
}
