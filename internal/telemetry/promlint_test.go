package telemetry

import (
	"strings"
	"testing"
)

func lintErrs(t *testing.T, exposition string) []string {
	t.Helper()
	return Lint(exposition)
}

func wantClean(t *testing.T, exposition string) {
	t.Helper()
	if errs := Lint(exposition); len(errs) != 0 {
		t.Errorf("want clean, got %v for:\n%s", errs, exposition)
	}
}

func wantViolation(t *testing.T, exposition, fragment string) {
	t.Helper()
	errs := Lint(exposition)
	for _, e := range errs {
		if strings.Contains(e, fragment) {
			return
		}
	}
	t.Errorf("want a violation containing %q, got %v for:\n%s", fragment, errs, exposition)
}

func TestLintCleanExpositions(t *testing.T) {
	wantClean(t, "# TYPE a counter\na 1\n")
	wantClean(t, "# HELP a Something.\n# TYPE a counter\na 1\n")
	wantClean(t, "# TYPE a counter\na{rule=\"R1\"} 1\na{rule=\"R2\"} 0\n")
	wantClean(t, "# TYPE g gauge\ng{v=\"a\\\\b\\\"c\\nd\"} 1\n")
	wantClean(t, "# TYPE h histogram\n"+
		"h_bucket{le=\"100\"} 2\nh_bucket{le=\"1000\"} 5\nh_bucket{le=\"+Inf\"} 7\n"+
		"h_sum 123\nh_count 7\n")
}

func TestLintStructuralViolations(t *testing.T) {
	wantViolation(t, "a 1\n", "no TYPE")
	wantViolation(t, "# TYPE a counter\na 1\n\n# TYPE b counter\nb 1\n", "blank line")
	wantViolation(t, "# TYPE a counter\na 1\n# HELP a Late.\na 2\n", "must come first")
	wantViolation(t, "# TYPE a counter\n# TYPE a counter\na 1\n", "duplicate TYPE")
	wantViolation(t, "# TYPE a counter\na 1\n# TYPE b counter\nb 1\n# TYPE a counter\na 2\n", "interleaved")
	wantViolation(t, "# TYPE a counter\n", "no samples")
	wantViolation(t, "# TYPE a bogus\na 1\n", "malformed TYPE")
	wantViolation(t, "# EOF\n", "unexpected comment")
}

func TestLintSeriesViolations(t *testing.T) {
	wantViolation(t, "# TYPE a counter\na{rule=\"R2\"} 1\na{rule=\"R1\"} 1\n", "not sorted")
	wantViolation(t, "# TYPE a counter\na{rule=\"R1\"} 1\na{rule=\"R1\"} 2\n", "duplicate series")
	wantViolation(t, "# TYPE a counter\na -1\n", "negative")
	wantViolation(t, "# TYPE a counter\na one\n", "does not parse")
	wantViolation(t, "# TYPE a counter\na{1bad=\"x\"} 1\n", "malformed sample")
	wantViolation(t, "# TYPE a counter\na{v=\"tab\\t\"} 1\n", "malformed sample")
	wantViolation(t, "# TYPE a counter\na{v=\"unterminated} 1\n", "malformed sample")
}

func TestLintHistogramViolations(t *testing.T) {
	wantViolation(t, "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "+Inf")
	wantViolation(t, "# TYPE h histogram\n"+
		"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"not cumulative")
	wantViolation(t, "# TYPE h histogram\n"+
		"h_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 7\n", "!= _count")
	wantViolation(t, "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\n", "missing _count")
	wantViolation(t, "# TYPE h histogram\nh_bucket 4\nh_sum 1\nh_count 4\n", "missing le")
}

// TestLintRegistryOutput is the round-trip: everything the Registry can
// emit — plain counters, gauges, histograms, labeled families with escapes,
// info metrics, HELP text — must pass the strict grammar.
func TestLintRegistryOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total").Add(4)
	r.Gauge("depth").Set(-2)
	r.Histogram("lat_us", []uint64{100, 1000}).Observe(50)
	v := r.CounterVec("rules_total", "rule")
	for _, rule := range []string{"R1", "R11", "R2", "R31"} {
		v.With(rule).Inc()
	}
	v.With("we\"ird\\rule\n").Inc()
	r.SetInfo("build_info", map[string]string{"version": "v0.0.0-dev", "go_version": "go1.24.0"})
	r.SetHelp("rules_total", "Rule firings by rule id.")
	r.SetHelp("build_info", "Build identity\nsecond line.")
	out := r.Snapshot().String()
	if errs := lintErrs(t, out); len(errs) != 0 {
		t.Fatalf("registry output fails lint: %v\n%s", errs, out)
	}
}
