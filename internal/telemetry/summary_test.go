package telemetry

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestSummaryExactSmall checks quantile queries over a tiny stream, where
// the sketch holds every sample and answers exactly.
func TestSummaryExactSmall(t *testing.T) {
	s := NewSummary(nil)
	for _, v := range []uint64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		s.Observe(v)
	}
	if got := s.Count(); got != 10 {
		t.Fatalf("Count = %d, want 10", got)
	}
	if q := s.Query(0.5); q < 40 || q > 60 {
		t.Errorf("p50 = %v, want ~50", q)
	}
	if q := s.Query(0.99); q < 90 {
		t.Errorf("p99 = %v, want >= 90", q)
	}
}

// TestSummaryErrorBounds streams 50k random values and checks every
// tracked quantile against the exact order statistic, within the
// objective's rank error (with slack for the batch boundary).
func TestSummaryErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 50_000
	s := NewSummary(nil)
	vals := make([]float64, n)
	for i := range vals {
		v := uint64(rng.Intn(1_000_000))
		vals[i] = float64(v)
		s.Observe(v)
	}
	sort.Float64s(vals)
	for _, obj := range DefaultObjectives {
		got := s.Query(obj.Q)
		// Convert the returned value back to a rank range and require it
		// within ±(err*n + buffer slack) of the target rank.
		lo := sort.SearchFloat64s(vals, got)
		hi := sort.Search(len(vals), func(i int) bool { return vals[i] > got })
		target := obj.Q * n
		slack := 2*obj.Err*n + summaryBufCap
		if float64(hi) < target-slack || float64(lo) > target+slack {
			t.Errorf("q=%v: value %v has rank [%d,%d], want within %v of %v",
				obj.Q, got, lo, hi, slack, target)
		}
	}
	// The sketch must stay far smaller than the stream.
	s.mu.Lock()
	size := len(s.samples)
	s.mu.Unlock()
	if size > n/10 {
		t.Errorf("sketch holds %d samples for a %d-value stream; compression is not working", size, n)
	}
}

// TestSummaryExposition checks the summary family renders with quantile
// series, _sum, and _count — and passes the strict linter.
func TestSummaryExposition(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("req_latency_microseconds", nil)
	for i := uint64(1); i <= 100; i++ {
		s.Observe(i * 10)
	}
	out := r.Snapshot().String()
	for _, want := range []string{
		"# TYPE req_latency_microseconds summary",
		`req_latency_microseconds{quantile="0.5"}`,
		`req_latency_microseconds{quantile="0.99"}`,
		"req_latency_microseconds_sum 50500",
		"req_latency_microseconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := Lint(out); len(errs) != 0 {
		t.Errorf("lint rejects summary exposition: %v", errs)
	}
}

// TestSummaryEmptySkipped checks an unobserved summary emits no family at
// all (a TYPE line without samples is malformed).
func TestSummaryEmptySkipped(t *testing.T) {
	r := NewRegistry()
	r.Summary("never_observed", nil)
	out := r.Snapshot().String()
	if strings.Contains(out, "never_observed") {
		t.Errorf("empty summary should be skipped:\n%s", out)
	}
}

// TestHistogramExemplar checks ObserveExemplar retains the most recent
// request id per bucket and the exposition carries it in OpenMetrics
// style, accepted by the linter.
func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []uint64{1000, 10000})
	h.ObserveExemplar(500, "req-a")
	h.ObserveExemplar(700, "req-b") // displaces req-a in the first bucket
	h.ObserveExemplar(5000, "req-c")
	h.Observe(200) // no id: count moves, exemplar untouched
	snap := r.Snapshot().Histograms["lat"]
	if snap.Exemplars[0] == nil || snap.Exemplars[0].ID != "req-b" {
		t.Fatalf("bucket 0 exemplar = %+v, want req-b", snap.Exemplars[0])
	}
	if snap.Exemplars[1] == nil || snap.Exemplars[1].ID != "req-c" {
		t.Fatalf("bucket 1 exemplar = %+v, want req-c", snap.Exemplars[1])
	}
	if snap.Exemplars[2] != nil {
		t.Fatalf("+Inf bucket exemplar = %+v, want none", snap.Exemplars[2])
	}
	out := r.Snapshot().String()
	if !strings.Contains(out, `lat_bucket{le="1000"} 3 # {request_id="req-b"} 700`) {
		t.Errorf("exposition missing exemplar suffix:\n%s", out)
	}
	if errs := Lint(out); len(errs) != 0 {
		t.Errorf("lint rejects exemplar exposition: %v", errs)
	}
}

// TestLintSummaryViolations checks the linter rejects malformed summary
// and exemplar shapes.
func TestLintSummaryViolations(t *testing.T) {
	cases := map[string]string{
		"missing quantile label": "# TYPE s summary\ns 5\ns_sum 5\ns_count 1\n",
		"quantile out of range":  "# TYPE s summary\ns{quantile=\"1.5\"} 5\ns_sum 5\ns_count 1\n",
		"missing count":          "# TYPE s summary\ns{quantile=\"0.5\"} 5\ns_sum 5\n",
		"exemplar on counter":    "# TYPE c counter\nc 5 # {request_id=\"x\"} 5\n",
		"malformed exemplar": "# TYPE h histogram\nh_bucket{le=\"1\"} 1 # nope\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"exemplar bad value": "# TYPE h histogram\nh_bucket{le=\"1\"} 1 # {request_id=\"x\"} zz\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
	}
	for name, exp := range cases {
		if errs := Lint(exp); len(errs) == 0 {
			t.Errorf("%s: lint accepted malformed exposition:\n%s", name, exp)
		}
	}
	good := "# TYPE h histogram\nh_bucket{le=\"1\"} 1 # {request_id=\"x\"} 0.5\n" +
		"h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"
	if errs := Lint(good); len(errs) != 0 {
		t.Errorf("lint rejected well-formed exemplar: %v", errs)
	}
}

// TestOnSnapshot checks snapshot hooks run before metric reads, so
// scrape-time gauges are fresh in the same snapshot.
func TestOnSnapshot(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("refreshed")
	calls := 0
	r.OnSnapshot(func() { calls++; g.Set(int64(calls)) })
	if v := r.Snapshot().Gauges["refreshed"]; v != 1 {
		t.Fatalf("first snapshot gauge = %d, want 1", v)
	}
	if v := r.Snapshot().Gauges["refreshed"]; v != 2 {
		t.Fatalf("second snapshot gauge = %d, want 2", v)
	}
}
