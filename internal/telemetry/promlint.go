package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Lint checks an exposition against a strict subset of the Prometheus text
// format and returns one message per violation (empty means conformant).
// It exists so the served /metrics output — including labeled series like
// sigrec_rule_fired_total{rule="R11"} — cannot silently drift into a shape
// scrapers reject. Enforced rules:
//
//   - every line is "# HELP <name> <text>", "# TYPE <name> <type>", or a
//     sample "<name>{<label>="<escaped>",...} <value>"; nothing else
//   - each metric family is contiguous: optional HELP, then exactly one
//     TYPE, then its samples; HELP/TYPE never trail or repeat
//   - histogram sample names are the family name + _bucket/_sum/_count;
//     buckets carry le labels, counts are cumulative, the +Inf bucket is
//     last and equals _count
//   - summary samples carry a quantile label in [0,1] (plus _sum/_count);
//     quantile series appear in ascending order
//   - an OpenMetrics-style exemplar (` # {label="v",...} <value>`) is
//     accepted on histogram _bucket samples only, with the same label
//     grammar and a numeric value
//   - no duplicate series; counter/gauge family series sorted by label set
//   - label names match [a-zA-Z_][a-zA-Z0-9_]* and label values use only
//     the \\, \", and \n escapes
//   - sample values parse as numbers (counters and buckets non-negative)
func Lint(exposition string) []string {
	l := &linter{}
	lines := strings.Split(exposition, "\n")
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1] // trailing newline
	}
	for i, line := range lines {
		l.line(i+1, line)
	}
	l.endFamily()
	return l.errs
}

type linter struct {
	errs []string

	// Current family state.
	family     string
	familyType string
	sawHelp    bool
	sawType    bool
	samples    int
	series     []string // label blocks seen, in order, for sort/dup checks
	bucketPrev uint64
	bucketInf  float64
	bucketSum  bool // saw the +Inf bucket
	countVal   float64
	sawCount   bool

	closed map[string]bool // families already ended; re-opening is interleave
}

func (l *linter) errf(n int, format string, args ...any) {
	l.errs = append(l.errs, fmt.Sprintf("line %d: %s", n, fmt.Sprintf(format, args...)))
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

func (l *linter) line(n int, line string) {
	switch {
	case line == "":
		l.errf(n, "blank line")
	case strings.HasPrefix(line, "# HELP "):
		name, rest, ok := splitNameRest(line[len("# HELP "):])
		if !ok {
			l.errf(n, "malformed HELP line %q", line)
			return
		}
		l.openFamily(n, name)
		if l.sawHelp || l.sawType || l.samples > 0 {
			l.errf(n, "HELP for %s must come first in its family, exactly once", name)
		}
		l.sawHelp = true
		if rest == "" {
			l.errf(n, "HELP for %s has empty text", name)
		}
	case strings.HasPrefix(line, "# TYPE "):
		name, typ, ok := splitNameRest(line[len("# TYPE "):])
		if !ok || !validTypes[typ] {
			l.errf(n, "malformed TYPE line %q", line)
			return
		}
		l.openFamily(n, name)
		if l.sawType {
			l.errf(n, "duplicate TYPE for %s", name)
		}
		if l.samples > 0 {
			l.errf(n, "TYPE for %s after its samples", name)
		}
		l.sawType = true
		l.familyType = typ
	case strings.HasPrefix(line, "#"):
		l.errf(n, "unexpected comment %q (strict mode allows only HELP and TYPE)", line)
	default:
		l.sample(n, line)
	}
}

// splitNameRest splits "name rest..." and validates the metric name.
func splitNameRest(s string) (name, rest string, ok bool) {
	name, rest, _ = strings.Cut(s, " ")
	return name, rest, validName(name)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// openFamily switches linter state to the named family, closing the
// previous one; reopening a closed family means interleaved output.
func (l *linter) openFamily(n int, name string) {
	if l.family == name {
		return
	}
	l.endFamily()
	if l.closed[name] {
		l.errf(n, "family %s interleaved (appears in more than one block)", name)
	}
	l.family = name
	l.familyType = ""
	l.sawHelp, l.sawType = false, false
	l.samples = 0
	l.series = l.series[:0]
	l.bucketPrev, l.bucketInf, l.bucketSum = 0, 0, false
	l.countVal, l.sawCount = 0, false
}

// endFamily finishes per-family checks: series ordering/uniqueness for
// flat families, bucket/count consistency for histograms.
func (l *linter) endFamily() {
	if l.family == "" {
		return
	}
	if l.closed == nil {
		l.closed = make(map[string]bool)
	}
	l.closed[l.family] = true
	if !l.sawType {
		l.errs = append(l.errs, fmt.Sprintf("family %s: no TYPE line", l.family))
	}
	if l.samples == 0 {
		l.errs = append(l.errs, fmt.Sprintf("family %s: no samples", l.family))
	}
	switch l.familyType {
	case "counter", "gauge":
		if !sort.StringsAreSorted(l.series) {
			l.errs = append(l.errs, fmt.Sprintf("family %s: series not sorted by label set", l.family))
		}
		for i := 1; i < len(l.series); i++ {
			if l.series[i] == l.series[i-1] {
				l.errs = append(l.errs, fmt.Sprintf("family %s: duplicate series %s", l.family, l.series[i]))
			}
		}
	case "histogram":
		if !l.bucketSum {
			l.errs = append(l.errs, fmt.Sprintf("family %s: missing le=\"+Inf\" bucket", l.family))
		} else if l.sawCount && l.bucketInf != l.countVal {
			l.errs = append(l.errs, fmt.Sprintf("family %s: +Inf bucket %v != _count %v",
				l.family, l.bucketInf, l.countVal))
		}
		if !l.sawCount {
			l.errs = append(l.errs, fmt.Sprintf("family %s: missing _count", l.family))
		}
	case "summary":
		if !l.sawCount {
			l.errs = append(l.errs, fmt.Sprintf("family %s: missing _count", l.family))
		}
		if !sort.StringsAreSorted(l.series) {
			l.errs = append(l.errs, fmt.Sprintf("family %s: quantile series not ascending", l.family))
		}
		for i := 1; i < len(l.series); i++ {
			if l.series[i] == l.series[i-1] {
				l.errs = append(l.errs, fmt.Sprintf("family %s: duplicate series %s", l.family, l.series[i]))
			}
		}
	}
	l.family = ""
}

func (l *linter) sample(n int, line string) {
	main, exemplar, hasExemplar := strings.Cut(line, " # ")
	name, labels, value, ok := parseSample(main)
	if !ok {
		l.errf(n, "malformed sample %q", line)
		return
	}
	base := name
	isBucket, isSum, isCount := false, false, false
	if l.familyType == "histogram" && strings.HasPrefix(name, l.family+"_") {
		switch {
		case strings.HasSuffix(name, "_bucket"):
			base, isBucket = strings.TrimSuffix(name, "_bucket"), true
		case strings.HasSuffix(name, "_sum"):
			base, isSum = strings.TrimSuffix(name, "_sum"), true
		case strings.HasSuffix(name, "_count"):
			base, isCount = strings.TrimSuffix(name, "_count"), true
		}
	}
	if l.familyType == "summary" && strings.HasPrefix(name, l.family+"_") {
		switch {
		case strings.HasSuffix(name, "_sum"):
			base, isSum = strings.TrimSuffix(name, "_sum"), true
		case strings.HasSuffix(name, "_count"):
			base, isCount = strings.TrimSuffix(name, "_count"), true
		}
	}
	if l.familyType == "summary" && base == l.family && !isSum && !isCount {
		q, ok := labelValue(labels, "quantile")
		if !ok {
			l.errf(n, "summary sample %s missing quantile label", name)
		} else if f, err := strconv.ParseFloat(q, 64); err != nil || f < 0 || f > 1 {
			l.errf(n, "summary sample %s has quantile %q outside [0,1]", name, q)
		}
	}
	if hasExemplar {
		if !isBucket {
			l.errf(n, "exemplar on non-bucket sample %s", name)
		} else if !validExemplar(exemplar) {
			l.errf(n, "malformed exemplar %q on %s", exemplar, name)
		}
	}
	if base != l.family {
		// A sample with no preceding TYPE opens an implicit family, which
		// strict mode rejects (endFamily reports the missing TYPE).
		l.openFamily(n, base)
	}
	l.samples++
	v, err := strconv.ParseFloat(value, 64)
	if err != nil && !(isBucket && value == "+Inf") {
		l.errf(n, "sample value %q does not parse", value)
		return
	}
	if (l.familyType == "counter" || isBucket || isCount) && v < 0 {
		l.errf(n, "counter-style sample %s has negative value %s", name, value)
	}
	switch {
	case isBucket:
		le, ok := labelValue(labels, "le")
		if !ok {
			l.errf(n, "histogram bucket %s missing le label", name)
			return
		}
		if le == "+Inf" {
			l.bucketInf, l.bucketSum = v, true
		} else {
			if l.bucketSum {
				l.errf(n, "bucket after le=\"+Inf\" in %s", l.family)
			}
			if uint64(v) < l.bucketPrev {
				l.errf(n, "histogram %s buckets not cumulative", l.family)
			}
			l.bucketPrev = uint64(v)
		}
	case isCount:
		l.countVal, l.sawCount = v, true
	case isSum:
		// no structural constraint beyond parsing
	default:
		l.series = append(l.series, labels)
	}
}

// validExemplar checks the portion after a bucket sample's " # "
// separator: `{label="value",...} <value>` with an optional trailing
// timestamp, per the OpenMetrics exemplar grammar.
func validExemplar(s string) bool {
	if s == "" || s[0] != '{' {
		return false
	}
	end := strings.LastIndexByte(s, '}')
	if end < 0 || !validLabels(s[:end+1]) {
		return false
	}
	rest := s[end+1:]
	if !strings.HasPrefix(rest, " ") {
		return false
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return false
	}
	for _, f := range fields {
		if _, err := strconv.ParseFloat(f, 64); err != nil {
			return false
		}
	}
	return true
}

// parseSample splits a sample line into name, raw label block (may be
// empty), and value, validating label grammar and escapes.
func parseSample(line string) (name, labels, value string, ok bool) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", "", "", false
	}
	name = rest[:i]
	if !validName(name) {
		return "", "", "", false
	}
	if rest[i] == '{' {
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", "", "", false
		}
		labels = rest[i : end+1]
		if !validLabels(labels) {
			return "", "", "", false
		}
		rest = rest[end+1:]
		if !strings.HasPrefix(rest, " ") {
			return "", "", "", false
		}
		value = rest[1:]
	} else {
		value = rest[i+1:]
	}
	if value == "" || strings.ContainsRune(value, ' ') {
		return "", "", "", false
	}
	return name, labels, value, true
}

// validLabels checks a `{name="value",...}` block: label-name grammar and
// strictly legal escapes inside values.
func validLabels(block string) bool {
	s := block[1 : len(block)-1] // inner, braces validated by caller
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || !validLabelName(s[:eq]) {
			return false
		}
		s = s[eq+1:]
		if len(s) < 2 || s[0] != '"' {
			return false
		}
		s = s[1:]
		// Scan the escaped value to its closing quote.
		closed := false
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case '\\':
				if i+1 >= len(s) {
					return false
				}
				if c := s[i+1]; c != '\\' && c != '"' && c != 'n' {
					return false
				}
				i++
			case '"':
				s = s[i+1:]
				closed = true
			}
			if closed {
				break
			}
		}
		if !closed {
			return false
		}
		if s == "" {
			return true
		}
		if s[0] != ',' {
			return false
		}
		s = s[1:]
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// labelValue extracts one label's (unescaped-as-written) value from a raw
// label block.
func labelValue(block, name string) (string, bool) {
	if block == "" {
		return "", false
	}
	prefix := name + "=\""
	s := block[1 : len(block)-1]
	for s != "" {
		if strings.HasPrefix(s, prefix) {
			rest := s[len(prefix):]
			if end := strings.IndexByte(rest, '"'); end >= 0 {
				return rest[:end], true
			}
			return "", false
		}
		next := strings.IndexByte(s, ',')
		if next < 0 {
			break
		}
		s = s[next+1:]
	}
	return "", false
}
