package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("hits") != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("entries")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", nil) // E3 buckets: 1ms / 10ms / 100ms in us
	for _, us := range []uint64{10, 999, 1000, 1001, 50_000, 2_000_000} {
		h.Observe(us)
	}
	s := r.Snapshot().Histograms["lat_us"]
	if s.Count != 6 {
		t.Fatalf("count = %d", s.Count)
	}
	// Cumulative: <=1000 -> 3 (10, 999, 1000); <=10000 -> 4; <=100000 -> 5.
	want := []uint64{3, 4, 5, 6}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Cumulative[i], w)
		}
	}
	if s.Sum != 10+999+1000+1001+50_000+2_000_000 {
		t.Errorf("sum = %d", s.Sum)
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_us", nil)
	h.ObserveDuration(3 * time.Millisecond)
	h.ObserveDuration(-time.Second) // clamped to zero
	s := r.Snapshot().Histograms["d_us"]
	if s.Count != 2 || s.Sum != 3000 {
		t.Errorf("count=%d sum=%d, want 2/3000", s.Count, s.Sum)
	}
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total").Add(3)
	r.Gauge("a_entries").Set(2)
	r.Histogram("m_us", []uint64{100}).Observe(50)
	out := r.Snapshot().String()
	for _, want := range []string{
		"# TYPE a_entries gauge\na_entries 2\n",
		"# TYPE m_us histogram\nm_us_bucket{le=\"100\"} 1\nm_us_bucket{le=\"+Inf\"} 1\nm_us_sum 50\nm_us_count 1\n",
		"# TYPE z_total counter\nz_total 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Index(out, "a_entries") > strings.Index(out, "z_total") {
		t.Error("exposition not sorted by name")
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("rules_total", "rule")
	v.With("R4").Add(3)
	v.With("R16").Inc()
	if r.CounterVec("rules_total", "rule") != v {
		t.Error("re-registration returned a different vec")
	}
	if v.With("R4") != v.With("R4") {
		t.Error("With not stable for the same value")
	}
	s := r.Snapshot().LabeledCounters["rules_total"]
	if s.Label != "rule" {
		t.Errorf("label = %q", s.Label)
	}
	if s.Values["R4"] != 3 || s.Values["R16"] != 1 {
		t.Errorf("values = %v", s.Values)
	}
}

func TestLabeledExposition(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("rules_total", "rule")
	v.With("R2").Add(2)
	v.With("R11").Add(11)
	out := r.Snapshot().String()
	// Series sorted lexicographically by label value within the family.
	want := "# TYPE rules_total counter\nrules_total{rule=\"R11\"} 11\nrules_total{rule=\"R2\"} 2\n"
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing %q in:\n%s", want, out)
	}
}

func TestInfoAndHelp(t *testing.T) {
	r := NewRegistry()
	r.SetInfo("build_info", map[string]string{"version": "v1.2.3", "go_version": "go1.24"})
	r.SetHelp("build_info", "Build identity.")
	out := r.Snapshot().String()
	want := "# HELP build_info Build identity.\n# TYPE build_info gauge\nbuild_info{go_version=\"go1.24\",version=\"v1.2.3\"} 1\n"
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing %q in:\n%s", want, out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("odd_total", "v").With("a\\b\"c\nd").Inc()
	r.SetInfo("odd_info", map[string]string{"v": "x\"y"})
	r.SetHelp("odd_total", "line one\nline two \\ slash")
	out := r.Snapshot().String()
	for _, want := range []string{
		`odd_total{v="a\\b\"c\nd"} 1`,
		`odd_info{v="x\"y"} 1`,
		`# HELP odd_total line one\nline two \\ slash`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if errs := Lint(out); len(errs) != 0 {
		t.Errorf("escaped exposition fails lint: %v", errs)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil).Observe(uint64(j))
				if j%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 8000 || s.Gauges["g"] != 8000 || s.Histograms["h"].Count != 8000 {
		t.Errorf("lost updates: %+v", s)
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("shard_healthy", "shard")
	v.With("s1").Set(1)
	v.With("s2").Set(-3)
	if r.GaugeVec("shard_healthy", "shard") != v {
		t.Error("re-registration returned a different vec")
	}
	if v.With("s1") != v.With("s1") {
		t.Error("With not stable for the same value")
	}
	s := r.Snapshot().LabeledGauges["shard_healthy"]
	if s.Label != "shard" {
		t.Errorf("label = %q", s.Label)
	}
	if s.Values["s1"] != 1 || s.Values["s2"] != -3 {
		t.Errorf("values = %v", s.Values)
	}
	out := r.Snapshot().String()
	want := "# TYPE shard_healthy gauge\nshard_healthy{shard=\"s1\"} 1\nshard_healthy{shard=\"s2\"} -3\n"
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing %q in:\n%s", want, out)
	}
	// An empty family must not emit a bare TYPE line (strict grammar).
	r2 := NewRegistry()
	r2.GaugeVec("never_set", "shard")
	if strings.Contains(r2.Snapshot().String(), "never_set") {
		t.Error("empty gauge family leaked into the exposition")
	}
	if err := Lint(out); err != nil {
		t.Fatalf("labeled-gauge exposition fails lint: %v", err)
	}
}

func TestFloatGauge(t *testing.T) {
	r := NewRegistry()
	g := r.FloatGauge("burn")
	g.Set(14.4)
	if got := g.Load(); got != 14.4 {
		t.Errorf("Load = %v, want 14.4", got)
	}
	if r.FloatGauge("burn") != g {
		t.Error("re-registration returned a different gauge")
	}
	// Non-finite values are clamped to 0 so the text exposition stays
	// within the strict grammar (no NaN/Inf samples).
	g.Set(math.NaN())
	if got := g.Load(); got != 0 {
		t.Errorf("NaN clamped to %v, want 0", got)
	}
	g.Set(math.Inf(1))
	if got := g.Load(); got != 0 {
		t.Errorf("+Inf clamped to %v, want 0", got)
	}
	g.Set(0.0625)
	out := r.Snapshot().String()
	want := "# TYPE burn gauge\nburn 0.0625\n"
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing %q in:\n%s", want, out)
	}
	if err := Lint(out); err != nil {
		t.Fatalf("float-gauge exposition fails lint: %v", err)
	}
}

func TestFloatGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.FloatGaugeVec("sigrec_slo_burn_rate", "slo")
	v.With("availability:1h").Set(2.5)
	v.With("availability:5m").Set(0.5)
	if v.With("availability:1h") != v.With("availability:1h") {
		t.Error("With not stable for the same value")
	}
	s := r.Snapshot().LabeledFloatGauges["sigrec_slo_burn_rate"]
	if s.Label != "slo" {
		t.Errorf("label = %q", s.Label)
	}
	if s.Values["availability:1h"] != 2.5 || s.Values["availability:5m"] != 0.5 {
		t.Errorf("values = %v", s.Values)
	}
	r.SetHelp("sigrec_slo_burn_rate", "Error-budget burn rate per SLO window.")
	out := r.Snapshot().String()
	want := "# TYPE sigrec_slo_burn_rate gauge\n" +
		"sigrec_slo_burn_rate{slo=\"availability:1h\"} 2.5\n" +
		"sigrec_slo_burn_rate{slo=\"availability:5m\"} 0.5\n"
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing %q in:\n%s", want, out)
	}
	if err := Lint(out); err != nil {
		t.Fatalf("float-gauge-vec exposition fails lint: %v", err)
	}
	// An empty family must not emit a bare TYPE line (strict grammar).
	r2 := NewRegistry()
	r2.FloatGaugeVec("never_set", "slo")
	if strings.Contains(r2.Snapshot().String(), "never_set") {
		t.Error("empty float-gauge family leaked into the exposition")
	}
}

func TestSnapshotInfoLabels(t *testing.T) {
	r := NewRegistry()
	r.SetInfo("build_info", map[string]string{"version": "v9", "shard": "s2"})
	s := r.Snapshot()
	got := s.InfoLabels["build_info"]
	if got["version"] != "v9" || got["shard"] != "s2" {
		t.Errorf("InfoLabels = %v", got)
	}
}
