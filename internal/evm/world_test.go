package evm

import (
	"errors"
	"testing"
)

func addr(n uint64) Word { return WordFromUint64(n) }

// assemble builds bytecode, failing the test on errors.
func assemble(t *testing.T, build func(a *Assembler)) []byte {
	t.Helper()
	a := NewAssembler()
	build(a)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func TestWorldSimpleCall(t *testing.T) {
	w := NewWorld()
	// Callee: storage[1] = 0x2a; return the word 7.
	callee := assemble(t, func(a *Assembler) {
		a.Push(0x2a).Push(1).Op(SSTORE)
		a.Push(7).Push(0).Op(MSTORE)
		a.Push(32).Push(0).Op(RETURN)
	})
	// Caller: CALL callee, then store the returned word at slot 0.
	caller := assemble(t, func(a *Assembler) {
		a.Push(32)          // retLen
		a.Push(0)           // retOff
		a.Push(0)           // argsLen
		a.Push(0)           // argsOff
		a.Push(0)           // value
		a.PushWord(addr(2)) // target
		a.Push(100000)      // gas
		a.Op(CALL)
		a.Push(0).Op(SSTORE) // storage[success] -- slot 1 on success
		a.Push(0).Op(MLOAD)
		a.Push(9).Op(SSTORE) // storage[9] = returned word
		a.Op(STOP)
	})
	w.Deploy(addr(1), caller)
	w.Deploy(addr(2), callee)
	res, err := w.Call(addr(0xCAFE), addr(1), nil, ZeroWord, 0)
	if err != nil || res.Reverted {
		t.Fatalf("call failed: %v %v", err, res.Err)
	}
	calleeAcc, _ := w.Account(addr(2))
	if !calleeAcc.Storage[WordFromUint64(1)].Eq(WordFromUint64(0x2a)) {
		t.Error("callee storage write lost")
	}
	callerAcc, _ := w.Account(addr(1))
	if !callerAcc.Storage[WordFromUint64(9)].Eq(WordFromUint64(7)) {
		t.Errorf("return data not plumbed: %v", callerAcc.Storage)
	}
}

func TestWorldRevertRollsBack(t *testing.T) {
	w := NewWorld()
	// Callee writes then reverts.
	callee := assemble(t, func(a *Assembler) {
		a.Push(0x99).Push(5).Op(SSTORE)
		a.Push(0).Push(0).Op(REVERT)
	})
	caller := assemble(t, func(a *Assembler) {
		a.Push(0).Push(0).Push(0).Push(0).Push(0)
		a.PushWord(addr(2))
		a.Push(100000)
		a.Op(CALL)
		// Store the success flag at slot 0.
		a.Push(0).Op(SSTORE)
		a.Op(STOP)
	})
	w.Deploy(addr(1), caller)
	w.Deploy(addr(2), callee)
	res, err := w.Call(addr(0xCAFE), addr(1), nil, ZeroWord, 0)
	if err != nil || res.Reverted {
		t.Fatalf("outer call failed: %v %v", err, res.Err)
	}
	calleeAcc, _ := w.Account(addr(2))
	if _, dirty := calleeAcc.Storage[WordFromUint64(5)]; dirty {
		t.Error("reverted callee write persisted")
	}
	callerAcc, _ := w.Account(addr(1))
	if !callerAcc.Storage[WordFromUint64(0)].IsZero() {
		t.Error("CALL to reverting callee must push 0")
	}
}

func TestWorldDelegateCallUsesCallerStorage(t *testing.T) {
	w := NewWorld()
	// Library code: storage[3] = 0x77 (runs on the *caller's* storage).
	library := assemble(t, func(a *Assembler) {
		a.Push(0x77).Push(3).Op(SSTORE)
		a.Op(STOP)
	})
	caller := assemble(t, func(a *Assembler) {
		a.Push(0).Push(0).Push(0).Push(0)
		a.PushWord(addr(2))
		a.Push(100000)
		a.Op(DELEGATECALL)
		a.Op(POP)
		a.Op(STOP)
	})
	w.Deploy(addr(1), caller)
	w.Deploy(addr(2), library)
	if _, err := w.Call(addr(0xCAFE), addr(1), nil, ZeroWord, 0); err != nil {
		t.Fatal(err)
	}
	callerAcc, _ := w.Account(addr(1))
	libAcc, _ := w.Account(addr(2))
	if !callerAcc.Storage[WordFromUint64(3)].Eq(WordFromUint64(0x77)) {
		t.Error("delegatecall must write the caller's storage")
	}
	if len(libAcc.Storage) != 0 {
		t.Error("delegatecall must not touch the library's storage")
	}
}

func TestWorldStaticCallBlocksWrites(t *testing.T) {
	w := NewWorld()
	writer := assemble(t, func(a *Assembler) {
		a.Push(1).Push(0).Op(SSTORE)
		a.Op(STOP)
	})
	caller := assemble(t, func(a *Assembler) {
		a.Push(0).Push(0).Push(0).Push(0)
		a.PushWord(addr(2))
		a.Push(100000)
		a.Op(STATICCALL)
		a.Push(7).Op(SSTORE) // record the success flag at slot 7
		a.Op(STOP)
	})
	w.Deploy(addr(1), caller)
	w.Deploy(addr(2), writer)
	if _, err := w.Call(addr(0xCAFE), addr(1), nil, ZeroWord, 0); err != nil {
		t.Fatal(err)
	}
	writerAcc, _ := w.Account(addr(2))
	if len(writerAcc.Storage) != 0 {
		t.Error("static callee wrote storage")
	}
	callerAcc, _ := w.Account(addr(1))
	if !callerAcc.Storage[WordFromUint64(7)].IsZero() {
		t.Error("STATICCALL to a writer must fail (push 0)")
	}
}

func TestWorldValueTransfer(t *testing.T) {
	w := NewWorld()
	sink := assemble(t, func(a *Assembler) { a.Op(STOP) })
	w.Deploy(addr(2), sink)
	w.Fund(addr(1), WordFromUint64(1000))
	// An EOA call carrying value.
	caller := assemble(t, func(a *Assembler) {
		a.Push(0).Push(0).Push(0).Push(0)
		a.Push(250) // value
		a.PushWord(addr(2))
		a.Push(100000)
		a.Op(CALL)
		a.Op(POP)
		a.Op(STOP)
	})
	w.Deploy(addr(1), caller)
	// Re-fund (Deploy replaced the account).
	w.Fund(addr(1), WordFromUint64(1000))
	if _, err := w.Call(addr(0xCAFE), addr(1), nil, ZeroWord, 0); err != nil {
		t.Fatal(err)
	}
	from, _ := w.Account(addr(1))
	to, _ := w.Account(addr(2))
	if !from.Balance.Eq(WordFromUint64(750)) || !to.Balance.Eq(WordFromUint64(250)) {
		t.Errorf("balances: %v, %v", from.Balance, to.Balance)
	}
	// Insufficient balance: the CALL must fail, not panic.
	broke := assemble(t, func(a *Assembler) {
		a.Push(0).Push(0).Push(0).Push(0)
		a.Push(250000) // more than the balance
		a.PushWord(addr(2))
		a.Push(100000)
		a.Op(CALL)
		a.Push(7).Op(SSTORE)
		a.Op(STOP)
	})
	w.Deploy(addr(3), broke)
	if _, err := w.Call(addr(0xCAFE), addr(3), nil, ZeroWord, 0); err != nil {
		t.Fatal(err)
	}
	brokeAcc, _ := w.Account(addr(3))
	if !brokeAcc.Storage[WordFromUint64(7)].IsZero() {
		t.Error("overdraft CALL must push 0")
	}
}

func TestWorldCallDepthBound(t *testing.T) {
	w := NewWorld()
	// Self-calling contract: recursion must stop at the depth bound.
	self := assemble(t, func(a *Assembler) {
		a.Push(0).Push(0).Push(0).Push(0).Push(0)
		a.PushWord(addr(1))
		a.Push(100000)
		a.Op(CALL)
		a.Op(POP)
		a.Op(STOP)
	})
	w.Deploy(addr(1), self)
	res, err := w.Call(addr(0xCAFE), addr(1), nil, ZeroWord, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reverted {
		t.Fatalf("depth-bounded recursion should unwind cleanly: %v", res.Err)
	}
}

func TestWorldErrors(t *testing.T) {
	w := NewWorld()
	if _, err := w.Call(addr(1), addr(99), nil, ZeroWord, 0); !errors.Is(err, ErrNoAccount) {
		t.Errorf("missing account: %v", err)
	}
}

func TestWorldDeployInit(t *testing.T) {
	runtime := assemble(t, func(a *Assembler) {
		a.Push(1).Push(0).Op(SSTORE)
		a.Op(STOP)
	})
	// Init stub: CODECOPY the tail and return it. Assemble once with a
	// placeholder offset to learn the stub length, then again for real.
	buildInit := func(stubLen uint64) []byte {
		return assemble(t, func(a *Assembler) {
			a.Push(uint64(len(runtime)))
			a.Push(stubLen)
			a.Push(0)
			a.Op(CODECOPY)
			a.Push(uint64(len(runtime)))
			a.Push(0)
			a.Op(RETURN)
		})
	}
	init := buildInit(uint64(len(buildInit(0))))
	deploy := append(init, runtime...)
	w := NewWorld()
	acc, err := w.DeployInit(addr(5), deploy)
	if err != nil {
		t.Fatalf("deploy: %v (init len %d)", err, len(init))
	}
	if len(acc.Code) != len(runtime) {
		t.Fatalf("deployed %d bytes, want %d", len(acc.Code), len(runtime))
	}
	res, err := w.Call(addr(0xCAFE), addr(5), nil, ZeroWord, 0)
	if err != nil || res.Reverted {
		t.Fatalf("call deployed contract: %v %v", err, res.Err)
	}
}

// TestDelegateCallPreservesSender: msg.sender inside a delegatecalled
// library is the original caller, not the delegating contract.
func TestDelegateCallPreservesSender(t *testing.T) {
	w := NewWorld()
	// Library stores CALLER at slot 0 (in the caller's storage).
	library := assemble(t, func(a *Assembler) {
		a.Op(CALLER)
		a.Push(0).Op(SSTORE)
		a.Op(STOP)
	})
	proxy := assemble(t, func(a *Assembler) {
		a.Push(0).Push(0).Push(0).Push(0)
		a.PushWord(addr(2))
		a.Push(100000)
		a.Op(DELEGATECALL)
		a.Op(POP)
		a.Op(STOP)
	})
	w.Deploy(addr(1), proxy)
	w.Deploy(addr(2), library)
	eoa := addr(0xBEEF)
	if _, err := w.Call(eoa, addr(1), nil, ZeroWord, 0); err != nil {
		t.Fatal(err)
	}
	proxyAcc, _ := w.Account(addr(1))
	if got := proxyAcc.Storage[ZeroWord]; !got.Eq(eoa) {
		t.Errorf("delegatecall CALLER = %v, want the original sender %v", got, eoa)
	}
}
