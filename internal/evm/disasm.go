package evm

import (
	"fmt"
	"strings"
)

// Instruction is one decoded EVM instruction.
type Instruction struct {
	// PC is the byte offset of the opcode within the code.
	PC uint64
	// Op is the opcode byte.
	Op Op
	// Arg is the immediate value for PUSH instructions (zero otherwise).
	Arg Word
	// ArgBytes is the raw immediate (nil for non-PUSH). Truncated PUSH
	// immediates at the end of the code are zero-padded, matching EVM
	// execution semantics.
	ArgBytes []byte
	// Truncated marks a PUSH whose immediate ran past the end of the code.
	Truncated bool
}

// String formats the instruction as "PC: OP [0xarg]".
func (ins Instruction) String() string {
	if len(ins.ArgBytes) > 0 {
		return fmt.Sprintf("%05x: %s 0x%x", ins.PC, ins.Op, ins.ArgBytes)
	}
	return fmt.Sprintf("%05x: %s", ins.PC, ins.Op)
}

// Program is a disassembled contract: the instruction stream plus indexes
// used by the analyses.
type Program struct {
	Code         []byte
	Instructions []Instruction

	// byPC maps a program counter to its instruction-slice index, dense
	// form: byPC[pc] is -1 for PCs inside PUSH immediates. A slice beats
	// a map here — it is allocated in one shot, indexed without hashing,
	// and answers IsJumpDest too (a JUMPDEST byte is a jump target exactly
	// when an instruction starts there).
	byPC []int32
}

// Disassemble decodes runtime bytecode with a linear sweep, the same way the
// Geth disassembler does. It never fails: undefined bytes decode as INVALID
// one-byte instructions and truncated PUSH immediates are zero-padded.
// A counting pre-pass sizes the instruction slice exactly, and all PUSH
// immediates share one arena allocation.
func Disassemble(code []byte) *Program {
	nIns, nImm := 0, 0
	for pc := 0; pc < len(code); {
		size := 1 + Op(code[pc]).ImmediateSize()
		nImm += size - 1
		nIns++
		pc += size
	}
	p := &Program{
		Code:         code,
		Instructions: make([]Instruction, 0, nIns),
		byPC:         make([]int32, len(code)),
	}
	for i := range p.byPC {
		p.byPC[i] = -1
	}
	arena := make([]byte, nImm)
	for pc := 0; pc < len(code); {
		op := Op(code[pc])
		ins := Instruction{PC: uint64(pc), Op: op}
		size := 1
		if imm := op.ImmediateSize(); imm > 0 {
			end := pc + 1 + imm
			raw := arena[:imm:imm]
			arena = arena[imm:]
			if end > len(code) {
				copy(raw, code[pc+1:])
				ins.Truncated = true
			} else {
				copy(raw, code[pc+1:end])
			}
			ins.ArgBytes = raw
			ins.Arg = WordFromBytes(raw)
			size += imm
		}
		p.byPC[pc] = int32(len(p.Instructions))
		p.Instructions = append(p.Instructions, ins)
		pc += size
	}
	return p
}

// At returns the instruction at the given program counter, if one starts
// there (PCs inside PUSH immediates have no instruction).
func (p *Program) At(pc uint64) (Instruction, bool) {
	idx, ok := p.IndexOf(pc)
	if !ok {
		return Instruction{}, false
	}
	return p.Instructions[idx], true
}

// IndexOf returns the instruction-slice index for a PC.
func (p *Program) IndexOf(pc uint64) (int, bool) {
	if pc >= uint64(len(p.byPC)) || p.byPC[pc] < 0 {
		return 0, false
	}
	return int(p.byPC[pc]), true
}

// IsJumpDest reports whether pc holds a JUMPDEST (the only legal jump target).
func (p *Program) IsJumpDest(pc uint64) bool {
	if pc >= uint64(len(p.byPC)) || p.byPC[pc] < 0 {
		return false
	}
	return Op(p.Code[pc]) == JUMPDEST
}

// String renders the full disassembly listing.
func (p *Program) String() string {
	var b strings.Builder
	for _, ins := range p.Instructions {
		b.WriteString(ins.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// BasicBlock is a maximal straight-line instruction sequence: it starts at a
// leader (entry, JUMPDEST, or fall-through of a branch) and ends at a
// terminator, a JUMPI, or immediately before the next leader.
type BasicBlock struct {
	// Start and End are PCs: [Start, End] covers the block's instructions.
	Start, End uint64
	// Instructions indexes into Program.Instructions.
	First, Last int
}

// BasicBlocks partitions the program into basic blocks in PC order.
func (p *Program) BasicBlocks() []BasicBlock {
	if len(p.Instructions) == 0 {
		return nil
	}
	leaders := map[int]bool{0: true}
	for i, ins := range p.Instructions {
		switch {
		case ins.Op == JUMPDEST:
			leaders[i] = true
		case ins.Op == JUMPI || ins.Op.IsTerminator():
			if i+1 < len(p.Instructions) {
				leaders[i+1] = true
			}
		}
	}
	var blocks []BasicBlock
	start := 0
	flush := func(end int) {
		blocks = append(blocks, BasicBlock{
			Start: p.Instructions[start].PC,
			End:   p.Instructions[end].PC,
			First: start,
			Last:  end,
		})
	}
	for i := 1; i < len(p.Instructions); i++ {
		if leaders[i] {
			flush(i - 1)
			start = i
		}
	}
	flush(len(p.Instructions) - 1)
	return blocks
}
