package evm

import (
	"bytes"
	"errors"
	"testing"
)

// runAsm assembles and executes a program, failing the test on assembly
// errors.
func runAsm(t *testing.T, build func(a *Assembler), ctx CallContext) ExecResult {
	t.Helper()
	a := NewAssembler()
	build(a)
	code, err := a.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return NewInterpreter(code).Execute(ctx)
}

func TestInterpArithmeticReturn(t *testing.T) {
	// return 3 + 4 as a 32-byte word
	res := runAsm(t, func(a *Assembler) {
		a.Push(3).Push(4).Op(ADD)
		a.Push(0).Op(MSTORE)
		a.Push(32).Push(0).Op(RETURN)
	}, CallContext{})
	if res.Reverted {
		t.Fatalf("reverted: %v", res.Err)
	}
	want := WordFromUint64(7).Bytes32()
	if !bytes.Equal(res.ReturnData, want[:]) {
		t.Errorf("return = %x", res.ReturnData)
	}
}

func TestInterpCalldata(t *testing.T) {
	calldata := make([]byte, 36)
	copy(calldata, []byte{0xa9, 0x05, 0x9c, 0xbb})
	calldata[35] = 0x2a // uint256 arg = 42
	res := runAsm(t, func(a *Assembler) {
		a.Push(4).Op(CALLDATALOAD) // load first arg
		a.Push(0).Op(MSTORE)
		a.Push(32).Push(0).Op(RETURN)
	}, CallContext{CallData: calldata})
	want := WordFromUint64(42).Bytes32()
	if !bytes.Equal(res.ReturnData, want[:]) {
		t.Errorf("return = %x", res.ReturnData)
	}
}

func TestInterpCalldataPastEnd(t *testing.T) {
	res := runAsm(t, func(a *Assembler) {
		a.Push(1000).Op(CALLDATALOAD)
		a.Push(0).Op(MSTORE)
		a.Push(32).Push(0).Op(RETURN)
	}, CallContext{CallData: []byte{1, 2, 3}})
	if !WordFromBytes(res.ReturnData).IsZero() {
		t.Errorf("reads past calldata end must be zero, got %x", res.ReturnData)
	}
}

func TestInterpCalldatacopyZeroPads(t *testing.T) {
	res := runAsm(t, func(a *Assembler) {
		a.Push(8).Push(0).Push(0).Op(CALLDATACOPY) // copy 8 bytes from offset 0 to mem 0
		a.Push(32).Push(0).Op(RETURN)
	}, CallContext{CallData: []byte{0xaa, 0xbb}})
	if res.ReturnData[0] != 0xaa || res.ReturnData[1] != 0xbb || res.ReturnData[2] != 0 {
		t.Errorf("calldatacopy = %x", res.ReturnData[:8])
	}
}

func TestInterpStorage(t *testing.T) {
	a := NewAssembler()
	a.Push(0x2a).Push(7).Op(SSTORE) // storage[7] = 42
	a.Push(7).Op(SLOAD)
	a.Push(0).Op(MSTORE)
	a.Push(32).Push(0).Op(RETURN)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterpreter(code)
	res := in.Execute(CallContext{})
	if WordFromBytes(res.ReturnData).Cmp(WordFromUint64(0x2a)) != 0 {
		t.Errorf("sload = %x", res.ReturnData)
	}
	if res.StorageWrites != 1 {
		t.Errorf("writes = %d", res.StorageWrites)
	}
	if got := in.Storage()[WordFromUint64(7)]; !got.Eq(WordFromUint64(0x2a)) {
		t.Errorf("storage[7] = %v", got)
	}
}

func TestInterpStaticWriteProtection(t *testing.T) {
	res := runAsm(t, func(a *Assembler) {
		a.Push(1).Push(0).Op(SSTORE)
	}, CallContext{Static: true})
	if !errors.Is(res.Err, ErrWriteProtection) {
		t.Errorf("err = %v", res.Err)
	}
}

func TestInterpLoop(t *testing.T) {
	// i = 0; while (i < 5) i++; storage[0] = i
	res := runAsm(t, func(a *Assembler) {
		top := a.NewLabel()
		done := a.NewLabel()
		a.Push(0) // i on stack
		a.Bind(top)
		a.Dup(1).Push(5).Swap(1).Op(LT) // i < 5
		a.Op(ISZERO)
		a.JumpI(done)
		a.Push(1).Op(ADD)
		a.Jump(top)
		a.Bind(done)
		a.Push(0).Op(SSTORE)
		a.Op(STOP)
	}, CallContext{})
	if res.Reverted {
		t.Fatalf("loop reverted: %v", res.Err)
	}
}

func TestInterpRevert(t *testing.T) {
	res := runAsm(t, func(a *Assembler) {
		a.Push(0).Push(0).Op(REVERT)
	}, CallContext{})
	if !res.Reverted || res.Err != nil {
		t.Errorf("revert result = %+v", res)
	}
}

func TestInterpFaults(t *testing.T) {
	tests := []struct {
		name  string
		build func(a *Assembler)
		want  error
	}{
		{"underflow", func(a *Assembler) { a.Op(ADD) }, ErrStackUnderflow},
		{"invalid jump", func(a *Assembler) { a.Push(3).Op(JUMP) }, ErrInvalidJump},
		{"invalid op", func(a *Assembler) { a.Op(INVALID) }, ErrInvalidOpcode},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			res := runAsm(t, tc.build, CallContext{})
			if !errors.Is(res.Err, tc.want) {
				t.Errorf("err = %v, want %v", res.Err, tc.want)
			}
			if !res.Reverted {
				t.Error("faults must revert")
			}
		})
	}
}

func TestInterpStepLimit(t *testing.T) {
	res := runAsm(t, func(a *Assembler) {
		top := a.NewLabel()
		a.Bind(top)
		a.Jump(top)
	}, CallContext{StepLimit: 100})
	if !errors.Is(res.Err, ErrStepLimit) {
		t.Errorf("err = %v", res.Err)
	}
}

func TestInterpKeccak(t *testing.T) {
	// keccak256 of empty memory range must equal the empty-code hash.
	res := runAsm(t, func(a *Assembler) {
		a.Push(0).Push(0).Op(KECCAK256)
		a.Push(0).Op(MSTORE)
		a.Push(32).Push(0).Op(RETURN)
	}, CallContext{})
	want := MustWordFromHex("0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470")
	if !WordFromBytes(res.ReturnData).Eq(want) {
		t.Errorf("keccak = %x", res.ReturnData)
	}
}

func TestInterpLogs(t *testing.T) {
	res := runAsm(t, func(a *Assembler) {
		a.Push(0xbeef)    // topic (third from top)
		a.Push(0).Push(0) // size, then offset on top: LOG pops off, size, topics
		a.Op(LOG0 + 1)    // LOG1
		a.Op(STOP)
	}, CallContext{})
	if res.Err != nil {
		t.Fatalf("err: %v", res.Err)
	}
	if len(res.Logs) != 1 || !res.Logs[0].Topics[0].Eq(WordFromUint64(0xbeef)) {
		t.Errorf("logs = %+v", res.Logs)
	}
}

func TestInterpRunOffEndIsStop(t *testing.T) {
	code := []byte{byte(PUSH1), 0x01, byte(POP)}
	res := NewInterpreter(code).Execute(CallContext{})
	if res.Reverted || res.Err != nil {
		t.Errorf("running off the end must be STOP: %+v", res)
	}
}

func TestInterpCallStubs(t *testing.T) {
	res := runAsm(t, func(a *Assembler) {
		for i := 0; i < 7; i++ {
			a.Push(0)
		}
		a.Op(CALL) // stub pushes 1
		a.Push(0).Op(MSTORE)
		a.Push(32).Push(0).Op(RETURN)
	}, CallContext{})
	if !WordFromBytes(res.ReturnData).Eq(OneWord) {
		t.Errorf("CALL stub = %x", res.ReturnData)
	}
}

func TestTracerObservesSteps(t *testing.T) {
	a := NewAssembler()
	a.Push(3).Push(4).Op(ADD).Op(POP).Op(STOP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	var ops []Op
	var sawStackTwo bool
	res := NewInterpreter(code).Execute(CallContext{
		Tracer: func(s TraceStep) {
			ops = append(ops, s.Op)
			if s.Op == ADD && len(s.Stack) == 2 {
				sawStackTwo = true
			}
		},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(ops) != res.Steps {
		t.Errorf("traced %d steps, executed %d", len(ops), res.Steps)
	}
	if ops[0] != PUSH1 || ops[len(ops)-1] != STOP {
		t.Errorf("trace order: %v", ops)
	}
	if !sawStackTwo {
		t.Error("tracer did not observe the pre-ADD stack")
	}
}
