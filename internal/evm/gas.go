package evm

// Gas schedule. The constants follow the Ethereum yellow paper's fee
// schedule (Shanghai-era values) closely enough for relative costs to be
// meaningful: cheap stack/arithmetic ops, mid-cost memory traffic, and
// expensive storage writes, with quadratic memory expansion.
const (
	gasZero    = 0
	gasBase    = 2
	gasVeryLow = 3
	gasLow     = 5
	gasMid     = 8
	gasHigh    = 10
	gasJumpDst = 1

	gasKeccakBase    = 30
	gasKeccakPerWord = 6
	gasCopyPerWord   = 3
	gasBalance       = 100
	gasSLoad         = 100
	gasSStoreSet     = 20000
	gasSStoreReset   = 2900
	gasLogBase       = 375
	gasLogPerTopic   = 375
	gasLogPerByte    = 8
	gasCall          = 100
	gasCreate        = 32000
	gasSelfdestruct  = 5000
	gasExpBase       = 10
	gasExpPerByte    = 50

	// memory expansion: words*3 + words^2/512
	gasMemPerWord     = 3
	gasMemQuadDivisor = 512
)

// staticGas returns the flat cost of an opcode (dynamic components are
// added by the interpreter).
func staticGas(op Op) uint64 {
	switch {
	case op.IsPush() || op.IsDup() || op.IsSwap():
		return gasVeryLow
	}
	switch op {
	case STOP, RETURN, REVERT:
		return gasZero
	case ADDRESS, ORIGIN, CALLER, CALLVALUE, CALLDATASIZE, CODESIZE,
		GASPRICE, COINBASE, TIMESTAMP, NUMBER, PREVRANDAO, GASLIMIT,
		CHAINID, BASEFEE, RETURNDATASIZE, POP, PC, MSIZE, GAS:
		return gasBase
	case ADD, SUB, NOT, LT, GT, SLT, SGT, EQ, ISZERO, AND, OR, XOR, BYTE,
		SHL, SHR, SAR, CALLDATALOAD, MLOAD, MSTORE, MSTORE8:
		return gasVeryLow
	case MUL, DIV, SDIV, MOD, SMOD, SIGNEXTEND, SELFBALANCE:
		return gasLow
	case ADDMOD, MULMOD, JUMP:
		return gasMid
	case JUMPI:
		return gasHigh
	case EXP:
		return gasExpBase
	case JUMPDEST:
		return gasJumpDst
	case KECCAK256:
		return gasKeccakBase
	case CALLDATACOPY, CODECOPY, RETURNDATACOPY:
		return gasVeryLow
	case EXTCODECOPY, EXTCODESIZE, EXTCODEHASH, BALANCE, BLOCKHASH:
		return gasBalance
	case SLOAD:
		return gasSLoad
	case SSTORE:
		return 0 // fully dynamic
	case LOG0, LOG0 + 1, LOG0 + 2, LOG0 + 3, LOG4:
		return gasLogBase + uint64(op-LOG0)*gasLogPerTopic
	case CALL, CALLCODE, DELEGATECALL, STATICCALL:
		return gasCall
	case CREATE, CREATE2:
		return gasCreate
	case SELFDESTRUCT:
		return gasSelfdestruct
	default:
		return gasBase
	}
}

// memoryGas returns the total gas attributable to a memory of the given
// byte size (the interpreter charges the delta on expansion).
func memoryGas(sizeBytes uint64) uint64 {
	words := (sizeBytes + 31) / 32
	return words*gasMemPerWord + words*words/gasMemQuadDivisor
}

// copyGas is the per-word surcharge for copy operations.
func copyGas(n uint64) uint64 {
	return (n + 31) / 32 * gasCopyPerWord
}

// keccakGas is the per-word surcharge for hashing.
func keccakGas(n uint64) uint64 {
	return (n + 31) / 32 * gasKeccakPerWord
}

// expGas is the surcharge for EXP by exponent byte length.
func expGas(exponent Word) uint64 {
	return uint64(len(exponent.Bytes())) * gasExpPerByte
}

// logGas is the per-byte surcharge for LOG data.
func logGas(n uint64) uint64 {
	return n * gasLogPerByte
}

// sstoreGas approximates the net-metered store cost: writing a fresh slot
// costs the set price, overwriting costs the reset price.
func sstoreGas(existing, newVal Word, hadKey bool) uint64 {
	if !hadKey && !newVal.IsZero() {
		return gasSStoreSet
	}
	_ = existing
	return gasSStoreReset
}
