package evm

import "testing"

func buildCFG(t *testing.T, build func(a *Assembler)) *CFG {
	t.Helper()
	a := NewAssembler()
	build(a)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return Disassemble(code).CFG()
}

func TestCFGLinear(t *testing.T) {
	g := buildCFG(t, func(a *Assembler) {
		a.Push(1).Op(POP).Op(STOP)
	})
	if len(g.Blocks) != 1 || len(g.Succs[0]) != 0 {
		t.Errorf("linear program: %d blocks, succs %v", len(g.Blocks), g.Succs)
	}
}

func TestCFGBranch(t *testing.T) {
	g := buildCFG(t, func(a *Assembler) {
		taken := a.NewLabel()
		a.Push(0).Op(CALLDATALOAD)
		a.JumpI(taken) // block 0 -> {1, 2}
		a.Op(STOP)     // block 1
		a.Bind(taken)  // block 2
		a.Op(STOP)
	})
	if len(g.Blocks) != 3 {
		t.Fatalf("%d blocks", len(g.Blocks))
	}
	if len(g.Succs[0]) != 2 {
		t.Errorf("branch block succs = %v", g.Succs[0])
	}
	if len(g.Preds[2]) != 1 || g.Preds[2][0] != 0 {
		t.Errorf("taken block preds = %v", g.Preds[2])
	}
	if g.HasBackEdge() {
		t.Error("no loop expected")
	}
}

func TestCFGLoop(t *testing.T) {
	g := buildCFG(t, func(a *Assembler) {
		top := a.NewLabel()
		exit := a.NewLabel()
		a.Push(0)
		a.Bind(top)
		a.Dup(1).Push(5).Swap(1).Op(LT).Op(ISZERO)
		a.JumpI(exit)
		a.Push(1).Op(ADD)
		a.Jump(top)
		a.Bind(exit)
		a.Op(STOP)
	})
	if !g.HasBackEdge() {
		t.Error("loop must produce a back edge")
	}
	reach := g.Reachable()
	if len(reach) != len(g.Blocks) {
		t.Errorf("only %d/%d blocks reachable", len(reach), len(g.Blocks))
	}
}

func TestCFGUnreachable(t *testing.T) {
	g := buildCFG(t, func(a *Assembler) {
		a.Op(STOP)     // block 0 terminates
		a.Op(JUMPDEST) // block 1: never targeted
		a.Push(1).Op(POP)
		a.Op(STOP)
	})
	reach := g.Reachable()
	if reach[1] {
		t.Error("dead block reported reachable")
	}
}

func TestCFGComputedJumpHasNoEdge(t *testing.T) {
	g := buildCFG(t, func(a *Assembler) {
		a.Push(0).Op(CALLDATALOAD)
		a.Op(JUMP) // computed target
		a.Op(JUMPDEST)
		a.Op(STOP)
	})
	if len(g.Succs[0]) != 0 {
		t.Errorf("computed jump should have no static edge, got %v", g.Succs[0])
	}
}

func TestCFGEmpty(t *testing.T) {
	g := Disassemble(nil).CFG()
	if len(g.Blocks) != 0 || len(g.Reachable()) != 0 {
		t.Error("empty code should yield an empty graph")
	}
}
