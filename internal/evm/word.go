// Package evm implements the Ethereum Virtual Machine substrate used by
// SigRec: 256-bit machine words, the instruction set, a disassembler,
// basic-block recognition, and a concrete interpreter.
//
// The package is self-contained (standard library only). Word arithmetic is
// implemented on four 64-bit limbs and verified against math/big by property
// tests.
package evm

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
	"math/bits"
	"strings"
)

// Word is a 256-bit EVM machine word stored as four little-endian 64-bit
// limbs: limb 0 holds the least significant 64 bits. The zero value is the
// number zero and is ready to use.
type Word struct {
	limbs [4]uint64
}

// Common word constants. These are values, not pointers, so callers cannot
// mutate shared state.
var (
	// ZeroWord is the number 0.
	ZeroWord = Word{}
	// OneWord is the number 1.
	OneWord = WordFromUint64(1)
	// MaxWord is 2^256 - 1.
	MaxWord = Word{limbs: [4]uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}}
)

// WordFromUint64 returns the word with the given low 64 bits.
func WordFromUint64(v uint64) Word {
	return Word{limbs: [4]uint64{v, 0, 0, 0}}
}

// WordFromBytes interprets b as a big-endian unsigned integer. Inputs longer
// than 32 bytes keep only the trailing 32 bytes, matching EVM PUSH semantics.
func WordFromBytes(b []byte) Word {
	if len(b) > 32 {
		b = b[len(b)-32:]
	}
	var w Word
	for i := 0; i < len(b); i++ {
		byteIdx := len(b) - 1 - i // distance from least significant byte
		limb := byteIdx / 8
		shift := uint(byteIdx%8) * 8
		w.limbs[limb] |= uint64(b[i]) << shift
	}
	return w
}

// WordFromBig converts a big.Int to a Word, truncating modulo 2^256.
// Negative inputs are converted to their two's-complement representation.
func WordFromBig(v *big.Int) Word {
	m := new(big.Int).Set(v)
	m.Mod(m, wordModulus())
	if m.Sign() < 0 {
		m.Add(m, wordModulus())
	}
	var w Word
	for i := 0; i < 4; i++ {
		w.limbs[i] = m.Uint64()
		m.Rsh(m, 64)
	}
	return w
}

// WordFromHex parses a hexadecimal string (optionally 0x-prefixed).
func WordFromHex(s string) (Word, error) {
	s = strings.TrimPrefix(s, "0x")
	if len(s) == 0 || len(s) > 64 {
		return Word{}, fmt.Errorf("evm: hex word %q: invalid length", s)
	}
	if len(s)%2 == 1 {
		s = "0" + s
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return Word{}, fmt.Errorf("evm: hex word: %w", err)
	}
	return WordFromBytes(b), nil
}

// MustWordFromHex is WordFromHex for constants known to be valid; it panics
// on malformed input and is intended for package-level initialization only.
func MustWordFromHex(s string) Word {
	w, err := WordFromHex(s)
	if err != nil {
		panic(err)
	}
	return w
}

func wordModulus() *big.Int {
	m := big.NewInt(1)
	return m.Lsh(m, 256)
}

// Bytes32 returns the big-endian 32-byte representation.
func (w Word) Bytes32() [32]byte {
	var out [32]byte
	for i := 0; i < 32; i++ {
		byteIdx := 31 - i
		limb := byteIdx / 8
		shift := uint(byteIdx%8) * 8
		out[i] = byte(w.limbs[limb] >> shift)
	}
	return out
}

// Bytes returns the minimal big-endian representation (no leading zeros,
// empty for zero).
func (w Word) Bytes() []byte {
	full := w.Bytes32()
	i := 0
	for i < 32 && full[i] == 0 {
		i++
	}
	out := make([]byte, 32-i)
	copy(out, full[i:])
	return out
}

// Big returns the unsigned value as a big.Int.
func (w Word) Big() *big.Int {
	v := new(big.Int)
	for i := 3; i >= 0; i-- {
		v.Lsh(v, 64)
		v.Or(v, new(big.Int).SetUint64(w.limbs[i]))
	}
	return v
}

// SignedBig interprets the word as a two's-complement signed integer.
func (w Word) SignedBig() *big.Int {
	v := w.Big()
	if w.Sign() < 0 {
		v.Sub(v, wordModulus())
	}
	return v
}

// Uint64 returns the low 64 bits and whether the word fits in 64 bits.
func (w Word) Uint64() (uint64, bool) {
	return w.limbs[0], w.limbs[1] == 0 && w.limbs[2] == 0 && w.limbs[3] == 0
}

// IsZero reports whether the word is zero.
func (w Word) IsZero() bool {
	return w.limbs[0]|w.limbs[1]|w.limbs[2]|w.limbs[3] == 0
}

// Sign returns -1 if the word is negative under two's complement, 0 if zero,
// and 1 otherwise.
func (w Word) Sign() int {
	if w.IsZero() {
		return 0
	}
	if w.limbs[3]>>63 == 1 {
		return -1
	}
	return 1
}

// Eq reports whether two words are equal.
func (w Word) Eq(o Word) bool { return w.limbs == o.limbs }

// Cmp compares unsigned values: -1 if w < o, 0 if equal, 1 if w > o.
func (w Word) Cmp(o Word) int {
	for i := 3; i >= 0; i-- {
		switch {
		case w.limbs[i] < o.limbs[i]:
			return -1
		case w.limbs[i] > o.limbs[i]:
			return 1
		}
	}
	return 0
}

// Scmp compares as two's-complement signed values.
func (w Word) Scmp(o Word) int {
	ws, os := w.Sign() < 0, o.Sign() < 0
	switch {
	case ws && !os:
		return -1
	case !ws && os:
		return 1
	default:
		return w.Cmp(o)
	}
}

// Hex returns the minimal 0x-prefixed hexadecimal representation.
func (w Word) Hex() string {
	b := w.Bytes()
	if len(b) == 0 {
		return "0x0"
	}
	return "0x" + strings.TrimLeft(hex.EncodeToString(b), "0")
}

// String implements fmt.Stringer.
func (w Word) String() string { return w.Hex() }

// Add returns w + o mod 2^256.
func (w Word) Add(o Word) Word {
	var out Word
	var carry uint64
	for i := 0; i < 4; i++ {
		out.limbs[i], carry = addCarry(w.limbs[i], o.limbs[i], carry)
	}
	return out
}

func addCarry(a, b, c uint64) (sum, carry uint64) {
	s, c1 := bits.Add64(a, b, c)
	return s, c1
}

// Sub returns w - o mod 2^256.
func (w Word) Sub(o Word) Word {
	var out Word
	var borrow uint64
	for i := 0; i < 4; i++ {
		out.limbs[i], borrow = bits.Sub64(w.limbs[i], o.limbs[i], borrow)
	}
	return out
}

// Neg returns the two's-complement negation.
func (w Word) Neg() Word { return ZeroWord.Sub(w) }

// Mul returns w * o mod 2^256.
func (w Word) Mul(o Word) Word {
	var out Word
	for i := 0; i < 4; i++ {
		if w.limbs[i] == 0 {
			continue
		}
		var carry uint64
		for j := 0; i+j < 4; j++ {
			hi, lo := bits.Mul64(w.limbs[i], o.limbs[j])
			var c1, c2 uint64
			out.limbs[i+j], c1 = bits.Add64(out.limbs[i+j], lo, 0)
			out.limbs[i+j], c2 = bits.Add64(out.limbs[i+j], carry, 0)
			carry = hi + c1 + c2
		}
	}
	return out
}

// Div returns the unsigned quotient w / o, or zero when o is zero (EVM DIV
// semantics).
func (w Word) Div(o Word) Word {
	if o.IsZero() {
		return ZeroWord
	}
	if w.Cmp(o) < 0 {
		return ZeroWord
	}
	// Fast path: both fit in 64 bits.
	if wv, ok := w.Uint64(); ok {
		ov, _ := o.Uint64()
		return WordFromUint64(wv / ov)
	}
	q, _ := divmod(w, o)
	return q
}

// Mod returns the unsigned remainder w % o, or zero when o is zero.
func (w Word) Mod(o Word) Word {
	if o.IsZero() {
		return ZeroWord
	}
	if wv, ok := w.Uint64(); ok {
		if ov, ok2 := o.Uint64(); ok2 {
			return WordFromUint64(wv % ov)
		}
		return w
	}
	_, r := divmod(w, o)
	return r
}

// log2IfPow2 returns k when w == 2^k (exactly one bit set).
func (w Word) log2IfPow2() (uint, bool) {
	var k uint
	seen := false
	for i, l := range w.limbs {
		if l == 0 {
			continue
		}
		if seen || l&(l-1) != 0 {
			return 0, false
		}
		seen = true
		k = uint(i*64 + bits.TrailingZeros64(l))
	}
	return k, seen
}

// divmod computes the unsigned quotient and remainder. o must be nonzero.
// Real contracts divide almost exclusively by powers of two (type masks,
// alignment) or small constants (fixed-point scaling), so those cases run
// limb-native; the general 256-by-256 case falls back to big.Int.
func divmod(w, o Word) (q, r Word) {
	if k, ok := o.log2IfPow2(); ok {
		return w.shrUint(k), w.And(LowMask(k))
	}
	if ov, ok := o.Uint64(); ok {
		return divmod64(w, ov)
	}
	qb, rb := new(big.Int).QuoRem(w.Big(), o.Big(), new(big.Int))
	return WordFromBig(qb), WordFromBig(rb)
}

// divmod64 divides by a 64-bit divisor limb by limb, most significant
// first. The running remainder is always < d, so bits.Div64's quotient
// fits a limb and the intrinsic never panics. d must be nonzero.
func divmod64(w Word, d uint64) (q, r Word) {
	var rem uint64
	for i := 3; i >= 0; i-- {
		q.limbs[i], rem = bits.Div64(rem, w.limbs[i], d)
	}
	return q, WordFromUint64(rem)
}

// SDiv returns the signed quotient per EVM SDIV (truncated toward zero),
// with SDiv(minInt256, -1) == minInt256 and division by zero yielding zero.
// Sign-adjusting around the unsigned division covers the overflow case for
// free: |minInt256| is 2^255, whose quotient bit pattern is already the
// two's-complement answer.
func (w Word) SDiv(o Word) Word {
	if o.IsZero() {
		return ZeroWord
	}
	wneg, oneg := w.Sign() < 0, o.Sign() < 0
	a, b := w, o
	if wneg {
		a = a.Neg()
	}
	if oneg {
		b = b.Neg()
	}
	q := a.Div(b)
	if wneg != oneg {
		q = q.Neg()
	}
	return q
}

// SMod returns the signed remainder per EVM SMOD (sign follows dividend).
func (w Word) SMod(o Word) Word {
	if o.IsZero() {
		return ZeroWord
	}
	a, b := w, o
	wneg := w.Sign() < 0
	if wneg {
		a = a.Neg()
	}
	if o.Sign() < 0 {
		b = b.Neg()
	}
	r := a.Mod(b)
	if wneg {
		r = r.Neg()
	}
	return r
}

// AddMod returns (w + o) % m with intermediate precision, zero if m is zero.
func (w Word) AddMod(o, m Word) Word {
	if m.IsZero() {
		return ZeroWord
	}
	if k, ok := m.log2IfPow2(); ok {
		// 2^256 ≡ 0 (mod 2^k), so masking the wrapped sum is exact even
		// when w+o overflows 256 bits.
		return w.Add(o).And(LowMask(k))
	}
	if mv, ok := m.Uint64(); ok {
		_, wr := divmod64(w, mv)
		_, orr := divmod64(o, mv)
		a, b := wr.limbs[0], orr.limbs[0]
		s := a + b
		// Both remainders are < mv, so at most one subtraction corrects
		// the sum — including when it wrapped uint64 (s < a).
		if s < a || s >= mv {
			s -= mv
		}
		return WordFromUint64(s)
	}
	s := new(big.Int).Add(w.Big(), o.Big())
	return WordFromBig(s.Mod(s, m.Big()))
}

// MulMod returns (w * o) % m with intermediate precision, zero if m is zero.
func (w Word) MulMod(o, m Word) Word {
	if m.IsZero() {
		return ZeroWord
	}
	if k, ok := m.log2IfPow2(); ok {
		return w.Mul(o).And(LowMask(k))
	}
	if mv, ok := m.Uint64(); ok {
		_, wr := divmod64(w, mv)
		_, orr := divmod64(o, mv)
		// Both factors are < mv, so the 128-bit product's high half is
		// < mv and bits.Div64 applies directly.
		hi, lo := bits.Mul64(wr.limbs[0], orr.limbs[0])
		_, rem := bits.Div64(hi, lo, mv)
		return WordFromUint64(rem)
	}
	p := new(big.Int).Mul(w.Big(), o.Big())
	return WordFromBig(p.Mod(p, m.Big()))
}

// Exp returns w^o mod 2^256, by single shift for power-of-two bases and
// MSB-first square-and-multiply otherwise (Mul already reduces mod 2^256).
func (w Word) Exp(o Word) Word {
	if k, ok := w.log2IfPow2(); ok {
		if k == 0 {
			return OneWord // 1^o
		}
		ev, fits := o.Uint64()
		if !fits || ev >= 256 || uint(ev)*k >= 256 {
			return ZeroWord
		}
		return OneWord.shlUint(uint(ev) * k)
	}
	hb := -1
	for i := 3; i >= 0; i-- {
		if o.limbs[i] != 0 {
			hb = i*64 + 63 - bits.LeadingZeros64(o.limbs[i])
			break
		}
	}
	if hb < 0 {
		return OneWord // w^0
	}
	result := OneWord
	for i := hb; i >= 0; i-- {
		result = result.Mul(result)
		if o.Bit(uint(i)) {
			result = result.Mul(w)
		}
	}
	return result
}

// SignExtend implements EVM SIGNEXTEND: k selects the byte position of the
// sign bit (0 = lowest byte); bytes above position k are filled with the
// sign. If k >= 31 the word is returned unchanged.
func (w Word) SignExtend(k Word) Word {
	kv, ok := k.Uint64()
	if !ok || kv >= 31 {
		return w
	}
	bitPos := kv*8 + 7
	signBit := w.Bit(uint(bitPos))
	out := w
	for b := bitPos + 1; b < 256; b++ {
		out = out.SetBit(uint(b), signBit)
	}
	return out
}

// Bit returns the bit at position i (0 = least significant).
func (w Word) Bit(i uint) bool {
	if i >= 256 {
		return false
	}
	return w.limbs[i/64]>>(i%64)&1 == 1
}

// SetBit returns a copy with bit i set to v.
func (w Word) SetBit(i uint, v bool) Word {
	if i >= 256 {
		return w
	}
	out := w
	if v {
		out.limbs[i/64] |= 1 << (i % 64)
	} else {
		out.limbs[i/64] &^= 1 << (i % 64)
	}
	return out
}

// Byte implements EVM BYTE: returns byte i of the word counting from the
// most significant (i=0) end; zero when i >= 32.
func (w Word) Byte(i Word) Word {
	iv, ok := i.Uint64()
	if !ok || iv >= 32 {
		return ZeroWord
	}
	b := w.Bytes32()
	return WordFromUint64(uint64(b[iv]))
}

// And returns the bitwise AND.
func (w Word) And(o Word) Word {
	var out Word
	for i := range out.limbs {
		out.limbs[i] = w.limbs[i] & o.limbs[i]
	}
	return out
}

// Or returns the bitwise OR.
func (w Word) Or(o Word) Word {
	var out Word
	for i := range out.limbs {
		out.limbs[i] = w.limbs[i] | o.limbs[i]
	}
	return out
}

// Xor returns the bitwise XOR.
func (w Word) Xor(o Word) Word {
	var out Word
	for i := range out.limbs {
		out.limbs[i] = w.limbs[i] ^ o.limbs[i]
	}
	return out
}

// Not returns the bitwise complement.
func (w Word) Not() Word {
	var out Word
	for i := range out.limbs {
		out.limbs[i] = ^w.limbs[i]
	}
	return out
}

// Shl returns w << n mod 2^256 (zero when n >= 256).
func (w Word) Shl(n Word) Word {
	nv, ok := n.Uint64()
	if !ok || nv >= 256 {
		return ZeroWord
	}
	return w.shlUint(uint(nv))
}

func (w Word) shlUint(n uint) Word {
	limbShift, bitShift := n/64, n%64
	var out Word
	for i := 3; i >= 0; i-- {
		src := i - int(limbShift)
		if src < 0 {
			continue
		}
		out.limbs[i] = w.limbs[src] << bitShift
		if bitShift > 0 && src > 0 {
			out.limbs[i] |= w.limbs[src-1] >> (64 - bitShift)
		}
	}
	return out
}

// Shr returns the logical right shift w >> n (zero when n >= 256).
func (w Word) Shr(n Word) Word {
	nv, ok := n.Uint64()
	if !ok || nv >= 256 {
		return ZeroWord
	}
	return w.shrUint(uint(nv))
}

func (w Word) shrUint(n uint) Word {
	limbShift, bitShift := n/64, n%64
	var out Word
	for i := 0; i < 4; i++ {
		src := i + int(limbShift)
		if src > 3 {
			continue
		}
		out.limbs[i] = w.limbs[src] >> bitShift
		if bitShift > 0 && src < 3 {
			out.limbs[i] |= w.limbs[src+1] << (64 - bitShift)
		}
	}
	return out
}

// Sar returns the arithmetic right shift (sign-filling).
func (w Word) Sar(n Word) Word {
	neg := w.Sign() < 0
	nv, ok := n.Uint64()
	if !ok || nv >= 256 {
		if neg {
			return MaxWord
		}
		return ZeroWord
	}
	out := w.shrUint(uint(nv))
	if neg && nv > 0 {
		// Fill the vacated high bits with ones.
		fill := MaxWord.shlUint(256 - uint(nv))
		out = out.Or(fill)
	}
	return out
}

// Lt returns 1 if w < o (unsigned), else 0, as a Word (EVM comparison result).
func (w Word) Lt(o Word) Word { return boolWord(w.Cmp(o) < 0) }

// Gt returns 1 if w > o (unsigned), else 0.
func (w Word) Gt(o Word) Word { return boolWord(w.Cmp(o) > 0) }

// Slt returns 1 if w < o (signed), else 0.
func (w Word) Slt(o Word) Word { return boolWord(w.Scmp(o) < 0) }

// Sgt returns 1 if w > o (signed), else 0.
func (w Word) Sgt(o Word) Word { return boolWord(w.Scmp(o) > 0) }

// EqWord returns 1 if w == o, else 0.
func (w Word) EqWord(o Word) Word { return boolWord(w.Eq(o)) }

// IsZeroWord returns 1 if w == 0, else 0.
func (w Word) IsZeroWord() Word { return boolWord(w.IsZero()) }

func boolWord(b bool) Word {
	if b {
		return OneWord
	}
	return ZeroWord
}

// LowMask returns the word with the low n bits set (n in [0,256]).
func LowMask(n uint) Word {
	switch {
	case n == 0:
		return ZeroWord
	case n >= 256:
		return MaxWord
	default:
		return MaxWord.shrUint(256 - n)
	}
}

// HighMask returns the word with the high n bits set (n in [0,256]).
func HighMask(n uint) Word {
	switch {
	case n == 0:
		return ZeroWord
	case n >= 256:
		return MaxWord
	default:
		return MaxWord.shlUint(256 - n)
	}
}

// ErrWordOverflow reports a conversion that does not fit the target width.
var ErrWordOverflow = errors.New("evm: word does not fit target width")

// ToUint64 converts to uint64, failing when the value exceeds 64 bits.
func (w Word) ToUint64() (uint64, error) {
	v, ok := w.Uint64()
	if !ok {
		return 0, ErrWordOverflow
	}
	return v, nil
}
