package evm

import (
	"strings"
	"testing"
)

func TestDisassembleBasic(t *testing.T) {
	// PUSH1 0x04 CALLDATALOAD STOP
	code := []byte{byte(PUSH1), 0x04, byte(CALLDATALOAD), byte(STOP)}
	p := Disassemble(code)
	if len(p.Instructions) != 3 {
		t.Fatalf("got %d instructions", len(p.Instructions))
	}
	if p.Instructions[0].Op != PUSH1 || !p.Instructions[0].Arg.Eq(WordFromUint64(4)) {
		t.Errorf("instruction 0 = %v", p.Instructions[0])
	}
	if p.Instructions[1].PC != 2 || p.Instructions[1].Op != CALLDATALOAD {
		t.Errorf("instruction 1 = %v", p.Instructions[1])
	}
	if _, ok := p.At(1); ok {
		t.Error("PC 1 is inside an immediate and must not decode")
	}
}

func TestDisassembleTruncatedPush(t *testing.T) {
	code := []byte{byte(PUSH4), 0xaa, 0xbb}
	p := Disassemble(code)
	if len(p.Instructions) != 1 {
		t.Fatalf("got %d instructions", len(p.Instructions))
	}
	ins := p.Instructions[0]
	if !ins.Truncated {
		t.Error("expected truncated flag")
	}
	// Immediate is zero-padded on the right: 0xaabb0000.
	if !ins.Arg.Eq(WordFromUint64(0xaabb0000)) {
		t.Errorf("arg = %v", ins.Arg)
	}
}

func TestDisassembleInvalidBytes(t *testing.T) {
	code := []byte{0x0c, 0x0d, byte(STOP)} // 0x0c/0x0d are undefined
	p := Disassemble(code)
	if len(p.Instructions) != 3 {
		t.Fatalf("got %d instructions", len(p.Instructions))
	}
	if p.Instructions[0].Op.Defined() {
		t.Error("0x0c should be undefined")
	}
	if !strings.Contains(p.Instructions[0].Op.String(), "INVALID") {
		t.Errorf("mnemonic = %s", p.Instructions[0].Op)
	}
}

func TestDisassembleEmpty(t *testing.T) {
	p := Disassemble(nil)
	if len(p.Instructions) != 0 {
		t.Errorf("empty code should have no instructions")
	}
	if p.BasicBlocks() != nil {
		t.Errorf("empty code should have no blocks")
	}
}

func TestJumpDestIndex(t *testing.T) {
	code := []byte{byte(PUSH1), byte(JUMPDEST), byte(JUMPDEST), byte(STOP)}
	p := Disassemble(code)
	// Byte 1 is a JUMPDEST value but it is inside the PUSH1 immediate,
	// so it is NOT a valid jump target. Byte 2 is.
	if p.IsJumpDest(1) {
		t.Error("PC 1 is immediate data, not a JUMPDEST")
	}
	if !p.IsJumpDest(2) {
		t.Error("PC 2 must be a JUMPDEST")
	}
}

func TestBasicBlocks(t *testing.T) {
	a := NewAssembler()
	body := a.NewLabel()
	a.Push(0).Op(CALLDATALOAD) // block 0
	a.JumpI(body)              // ends block 0
	a.Op(STOP)                 // block 1 (fall-through leader)
	a.Bind(body)               // block 2
	a.Push(1).Op(POP).Op(STOP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	blocks := Disassemble(code).BasicBlocks()
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3: %+v", len(blocks), blocks)
	}
	if blocks[0].Start != 0 {
		t.Errorf("block 0 start = %d", blocks[0].Start)
	}
}

func TestAssemblerLabels(t *testing.T) {
	a := NewAssembler()
	l := a.NewLabel()
	a.Jump(l)
	a.Op(INVALID)
	a.Bind(l)
	a.Op(STOP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterpreter(code)
	res := in.Execute(CallContext{})
	if res.Reverted || res.Err != nil {
		t.Fatalf("jump over INVALID failed: %+v", res)
	}
}

func TestAssemblerErrors(t *testing.T) {
	a := NewAssembler()
	l := a.NewLabel()
	a.Jump(l) // never bound
	if _, err := a.Assemble(); err == nil {
		t.Error("unbound label must fail")
	}

	b := NewAssembler()
	lb := b.NewLabel()
	b.Bind(lb)
	b.Bind(lb)
	if _, err := b.Assemble(); err == nil {
		t.Error("double bind must fail")
	}

	c := NewAssembler()
	c.Dup(17)
	if _, err := c.Assemble(); err == nil {
		t.Error("DUP17 must fail")
	}
}

func TestPushWordWidths(t *testing.T) {
	a := NewAssembler()
	a.PushWord(ZeroWord)
	a.PushWord(MaxWord)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	p := Disassemble(code)
	if p.Instructions[0].Op != PUSH1 {
		t.Errorf("zero should use PUSH1, got %s", p.Instructions[0].Op)
	}
	if p.Instructions[1].Op != PUSH32 {
		t.Errorf("max should use PUSH32, got %s", p.Instructions[1].Op)
	}
}

func TestOpcodeTableProperties(t *testing.T) {
	if got := PUSH4.ImmediateSize(); got != 4 {
		t.Errorf("PUSH4 immediate = %d", got)
	}
	if !JUMP.IsTerminator() || JUMPI.IsTerminator() {
		t.Error("terminator classification broken")
	}
	if DUP1.StackPops() != 1 || DUP1.StackPushes() != 2 {
		t.Error("DUP1 stack effects broken")
	}
	if SWAP3.String() != "SWAP3" {
		t.Errorf("SWAP3 name = %s", SWAP3.String())
	}
}

var SWAP3 = Op(byte(SWAP1) + 2)
