package evm

import (
	"errors"
	"fmt"

	"sigrec/internal/keccak"
)

// Interpreter errors surfaced by Execute. Out-of-gas style step exhaustion
// and stack faults are returned rather than panicking, per EVM semantics
// (they would consume all gas on a real node).
var (
	ErrOutOfGas        = errors.New("evm: out of gas")
	ErrStackUnderflow  = errors.New("evm: stack underflow")
	ErrStackOverflow   = errors.New("evm: stack overflow")
	ErrInvalidJump     = errors.New("evm: jump to invalid destination")
	ErrInvalidOpcode   = errors.New("evm: invalid opcode")
	ErrStepLimit       = errors.New("evm: step limit exceeded")
	ErrWriteProtection = errors.New("evm: state write in static context")
)

const (
	maxStack = 1024
	// defaultStepLimit bounds execution of generated contracts; they are
	// tiny, so this is generous.
	defaultStepLimit = 1 << 20
	// maxMemory bounds interpreter memory growth (per execution).
	maxMemory = 1 << 24
)

// CallContext carries the environment of a message call.
type CallContext struct {
	CallData []byte
	// Caller and Address seed CALLER / ADDRESS; zero values are fine for
	// analysis workloads.
	Caller  Word
	Address Word
	Value   Word
	// Static forbids SSTORE/LOG/SELFDESTRUCT.
	Static bool
	// StepLimit overrides the default execution budget when positive.
	StepLimit int
	// Gas is the gas budget; zero disables metering (the analysis
	// workloads do not need it, the fuzzing ones may).
	Gas uint64
	// CollectCoverage records the set of executed instruction offsets in
	// the result (for coverage-guided fuzzing).
	CollectCoverage bool
	// Tracer, when set, observes every instruction before it executes.
	// Stack is a read-only view (top last); implementations must not
	// retain it past the call.
	Tracer func(step TraceStep)
}

// TraceStep is one instruction observation delivered to a Tracer.
type TraceStep struct {
	PC      uint64
	Op      Op
	Stack   []Word
	GasUsed uint64
	Depth   int
}

// ExecResult is the outcome of a call.
type ExecResult struct {
	// ReturnData is the RETURN or REVERT payload.
	ReturnData []byte
	// Reverted is true when execution ended in REVERT or a fault.
	Reverted bool
	// Err is non-nil on faults (invalid jump, stack fault, step limit).
	Err error
	// Steps is the number of instructions executed.
	Steps int
	// GasUsed is the metered gas consumption (tracked even when the
	// budget is unlimited). Memory expansion is charged at the following
	// step, so a terminal instruction's expansion is not billed.
	GasUsed uint64
	// Coverage is the set of executed instruction offsets, populated when
	// CallContext.CollectCoverage is set.
	Coverage map[uint64]bool
	// StorageWrites counts SSTOREs, used by the fuzzer's bug oracles.
	StorageWrites int
	// Logs records LOGn topics, used as bug beacons by the fuzzer.
	Logs []LogRecord
}

// LogRecord is one LOGn emission.
type LogRecord struct {
	Topics []Word
	Data   []byte
}

// Storage is the persistent key/value store of one contract.
type Storage map[Word]Word

// memory is a byte-addressed, zero-extended memory.
type memory struct {
	data []byte
}

func (m *memory) grow(end uint64) error {
	if end > maxMemory {
		return fmt.Errorf("evm: memory limit: need %d bytes", end)
	}
	if uint64(len(m.data)) < end {
		grown := make([]byte, end)
		copy(grown, m.data)
		m.data = grown
	}
	return nil
}

func (m *memory) load32(off uint64) (Word, error) {
	if err := m.grow(off + 32); err != nil {
		return Word{}, err
	}
	return WordFromBytes(m.data[off : off+32]), nil
}

func (m *memory) store32(off uint64, w Word) error {
	if err := m.grow(off + 32); err != nil {
		return err
	}
	b := w.Bytes32()
	copy(m.data[off:off+32], b[:])
	return nil
}

func (m *memory) store8(off uint64, b byte) error {
	if err := m.grow(off + 1); err != nil {
		return err
	}
	m.data[off] = b
	return nil
}

func (m *memory) copyFrom(dst uint64, src []byte, srcOff, n uint64) error {
	if n == 0 {
		return nil
	}
	if err := m.grow(dst + n); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		var b byte
		if srcOff+i < uint64(len(src)) {
			b = src[srcOff+i]
		}
		m.data[dst+i] = b
	}
	return nil
}

func (m *memory) slice(off, n uint64) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	if err := m.grow(off + n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.data[off:off+n])
	return out, nil
}

// Interpreter executes EVM bytecode concretely. It is the substrate for the
// fuzzing application and for differential tests of the generated contracts.
// Standalone interpreters stub external calls; attach a World (evm.World)
// to execute them for real.
type Interpreter struct {
	program *Program
	storage Storage

	// world and account are set when executing inside a multi-contract
	// World: storage writes journal through it and calls recurse.
	world   *World
	account *Account
	depth   int
}

// NewInterpreter prepares an interpreter for the given runtime bytecode with
// fresh storage.
func NewInterpreter(code []byte) *Interpreter {
	return &Interpreter{
		program: Disassemble(code),
		storage: make(Storage),
	}
}

// Storage exposes a copy of the contract storage (for assertions).
func (in *Interpreter) Storage() Storage {
	cp := make(Storage, len(in.storage))
	for k, v := range in.storage {
		cp[k] = v
	}
	return cp
}

// Execute runs a message call against the contract. Faults are reported in
// the result (Reverted + Err), not as a Go error: a fault is a legitimate
// execution outcome for the fuzzing workloads.
func (in *Interpreter) Execute(ctx CallContext) ExecResult {
	limit := ctx.StepLimit
	if limit <= 0 {
		limit = defaultStepLimit
	}
	var (
		lastReturn []byte
		stack      = make([]Word, 0, 64)
		mem        memory
		pc         uint64
		res        ExecResult
		fault      = func(err error) ExecResult { res.Reverted, res.Err = true, err; return res }
		pop        = func() Word { w := stack[len(stack)-1]; stack = stack[:len(stack)-1]; return w }
		push       = func(w Word) { stack = append(stack, w) }
		needs      = func(n int) bool { return len(stack) >= n }
		asU64      = func(w Word) (uint64, bool) { return w.Uint64() }
		toSize     = func(w Word) (uint64, bool) {
			v, ok := w.Uint64()
			return v, ok && v <= maxMemory
		}
	)
	var memCharged uint64 // memory-expansion gas billed so far
	if ctx.CollectCoverage {
		res.Coverage = make(map[uint64]bool, 64)
	}
	for {
		if res.Coverage != nil {
			res.Coverage[pc] = true
		}
		if res.Steps >= limit {
			return fault(ErrStepLimit)
		}
		// Fold in memory expansion from the previous step and enforce the
		// gas budget.
		if mg := memoryGas(uint64(len(mem.data))); mg > memCharged {
			res.GasUsed += mg - memCharged
			memCharged = mg
		}
		if ctx.Gas > 0 && res.GasUsed > ctx.Gas {
			return fault(ErrOutOfGas)
		}
		ins, ok := in.program.At(pc)
		if !ok {
			// Running off the end of code is STOP per EVM semantics.
			return res
		}
		res.Steps++
		op := ins.Op
		if ctx.Tracer != nil {
			ctx.Tracer(TraceStep{
				PC:      pc,
				Op:      op,
				Stack:   stack,
				GasUsed: res.GasUsed,
				Depth:   in.depth,
			})
		}
		res.GasUsed += staticGas(op)
		info := opTable[op]
		if !info.defined {
			return fault(ErrInvalidOpcode)
		}
		if !needs(info.pops) {
			return fault(ErrStackUnderflow)
		}
		if len(stack)-info.pops+info.pushes > maxStack {
			return fault(ErrStackOverflow)
		}
		nextPC := pc + 1 + uint64(len(ins.ArgBytes))
		switch {
		case op.IsPush():
			push(ins.Arg)
		case op.IsDup():
			n := int(op-DUP1) + 1
			push(stack[len(stack)-n])
		case op.IsSwap():
			n := int(op-SWAP1) + 1
			top := len(stack) - 1
			stack[top], stack[top-n] = stack[top-n], stack[top]
		default:
			switch op {
			case STOP:
				return res
			case ADD:
				a, b := pop(), pop()
				push(a.Add(b))
			case MUL:
				a, b := pop(), pop()
				push(a.Mul(b))
			case SUB:
				a, b := pop(), pop()
				push(a.Sub(b))
			case DIV:
				a, b := pop(), pop()
				push(a.Div(b))
			case SDIV:
				a, b := pop(), pop()
				push(a.SDiv(b))
			case MOD:
				a, b := pop(), pop()
				push(a.Mod(b))
			case SMOD:
				a, b := pop(), pop()
				push(a.SMod(b))
			case ADDMOD:
				a, b, m := pop(), pop(), pop()
				push(a.AddMod(b, m))
			case MULMOD:
				a, b, m := pop(), pop(), pop()
				push(a.MulMod(b, m))
			case EXP:
				a, b := pop(), pop()
				res.GasUsed += expGas(b)
				push(a.Exp(b))
			case SIGNEXTEND:
				k, v := pop(), pop()
				push(v.SignExtend(k))
			case LT:
				a, b := pop(), pop()
				push(a.Lt(b))
			case GT:
				a, b := pop(), pop()
				push(a.Gt(b))
			case SLT:
				a, b := pop(), pop()
				push(a.Slt(b))
			case SGT:
				a, b := pop(), pop()
				push(a.Sgt(b))
			case EQ:
				a, b := pop(), pop()
				push(a.EqWord(b))
			case ISZERO:
				push(pop().IsZeroWord())
			case AND:
				a, b := pop(), pop()
				push(a.And(b))
			case OR:
				a, b := pop(), pop()
				push(a.Or(b))
			case XOR:
				a, b := pop(), pop()
				push(a.Xor(b))
			case NOT:
				push(pop().Not())
			case BYTE:
				i, v := pop(), pop()
				push(v.Byte(i))
			case SHL:
				n, v := pop(), pop()
				push(v.Shl(n))
			case SHR:
				n, v := pop(), pop()
				push(v.Shr(n))
			case SAR:
				n, v := pop(), pop()
				push(v.Sar(n))
			case KECCAK256:
				off, size := pop(), pop()
				ov, ok1 := toSize(off)
				sv, ok2 := toSize(size)
				if !ok1 || !ok2 {
					return fault(fmt.Errorf("evm: keccak range out of bounds"))
				}
				res.GasUsed += keccakGas(sv)
				data, err := mem.slice(ov, sv)
				if err != nil {
					return fault(err)
				}
				sum := keccak.Sum256(data)
				push(WordFromBytes(sum[:]))
			case ADDRESS:
				push(ctx.Address)
			case CALLER:
				push(ctx.Caller)
			case ORIGIN:
				push(ctx.Caller)
			case CALLVALUE:
				push(ctx.Value)
			case CALLDATALOAD:
				off := pop()
				push(calldataLoad(ctx.CallData, off))
			case CALLDATASIZE:
				push(WordFromUint64(uint64(len(ctx.CallData))))
			case CALLDATACOPY:
				dst, src, n := pop(), pop(), pop()
				dv, ok1 := toSize(dst)
				nv, ok3 := toSize(n)
				if !ok1 || !ok3 {
					return fault(fmt.Errorf("evm: calldatacopy out of bounds"))
				}
				sv, ok2 := asU64(src)
				if !ok2 {
					sv = uint64(len(ctx.CallData)) // reads past end are zeros
				}
				res.GasUsed += copyGas(nv)
				if err := mem.copyFrom(dv, ctx.CallData, sv, nv); err != nil {
					return fault(err)
				}
			case CODESIZE:
				push(WordFromUint64(uint64(len(in.program.Code))))
			case CODECOPY:
				dst, src, n := pop(), pop(), pop()
				dv, ok1 := toSize(dst)
				nv, ok3 := toSize(n)
				if !ok1 || !ok3 {
					return fault(fmt.Errorf("evm: codecopy out of bounds"))
				}
				sv, ok2 := asU64(src)
				if !ok2 {
					sv = uint64(len(in.program.Code))
				}
				res.GasUsed += copyGas(nv)
				if err := mem.copyFrom(dv, in.program.Code, sv, nv); err != nil {
					return fault(err)
				}
			case BALANCE:
				addr := pop()
				if in.world != nil {
					if acc, ok := in.world.Account(addr); ok {
						push(acc.Balance)
						break
					}
				}
				push(ZeroWord)
			case EXTCODESIZE:
				addr := pop()
				if in.world != nil {
					if acc, ok := in.world.Account(addr); ok {
						push(WordFromUint64(uint64(len(acc.Code))))
						break
					}
				}
				push(ZeroWord)
			case EXTCODEHASH, BLOCKHASH:
				pop()
				push(ZeroWord)
			case GASPRICE, COINBASE, TIMESTAMP, NUMBER, PREVRANDAO, GASLIMIT,
				CHAINID, BASEFEE, MSIZE, GAS:
				push(ZeroWord)
			case SELFBALANCE:
				if in.account != nil {
					push(in.account.Balance)
				} else {
					push(ZeroWord)
				}
			case RETURNDATASIZE:
				push(WordFromUint64(uint64(len(lastReturn))))
			case RETURNDATACOPY:
				dst, src, n := pop(), pop(), pop()
				dv, ok1 := toSize(dst)
				nv, ok3 := toSize(n)
				if !ok1 || !ok3 {
					return fault(fmt.Errorf("evm: returndatacopy out of bounds"))
				}
				sv, ok2 := asU64(src)
				if !ok2 {
					sv = uint64(len(lastReturn))
				}
				if err := mem.copyFrom(dv, lastReturn, sv, nv); err != nil {
					return fault(err)
				}
			case EXTCODECOPY:
				pop()
				pop()
				pop()
				pop()
			case POP:
				pop()
			case MLOAD:
				off := pop()
				ov, ok := toSize(off)
				if !ok {
					return fault(fmt.Errorf("evm: mload out of bounds"))
				}
				w, err := mem.load32(ov)
				if err != nil {
					return fault(err)
				}
				push(w)
			case MSTORE:
				off, val := pop(), pop()
				ov, ok := toSize(off)
				if !ok {
					return fault(fmt.Errorf("evm: mstore out of bounds"))
				}
				if err := mem.store32(ov, val); err != nil {
					return fault(err)
				}
			case MSTORE8:
				off, val := pop(), pop()
				ov, ok := toSize(off)
				if !ok {
					return fault(fmt.Errorf("evm: mstore8 out of bounds"))
				}
				lo, _ := val.Uint64()
				if err := mem.store8(ov, byte(lo)); err != nil {
					return fault(err)
				}
			case SLOAD:
				key := pop()
				push(in.storage[key])
			case SSTORE:
				if ctx.Static {
					return fault(ErrWriteProtection)
				}
				key, val := pop(), pop()
				existing, hadKey := in.storage[key]
				res.GasUsed += sstoreGas(existing, val, hadKey)
				if in.world != nil && in.account != nil {
					in.world.writeStorage(in.account, key, val)
				} else {
					in.storage[key] = val
				}
				res.StorageWrites++
			case JUMP:
				dst := pop()
				dv, ok := asU64(dst)
				if !ok || !in.program.IsJumpDest(dv) {
					return fault(ErrInvalidJump)
				}
				pc = dv
				continue
			case JUMPI:
				dst, cond := pop(), pop()
				if !cond.IsZero() {
					dv, ok := asU64(dst)
					if !ok || !in.program.IsJumpDest(dv) {
						return fault(ErrInvalidJump)
					}
					pc = dv
					continue
				}
			case PC:
				push(WordFromUint64(pc))
			case JUMPDEST:
				// no-op
			case LOG0, LOG0 + 1, LOG0 + 2, LOG0 + 3, LOG4:
				if ctx.Static {
					return fault(ErrWriteProtection)
				}
				off, size := pop(), pop()
				topicCount := int(op - LOG0)
				topics := make([]Word, topicCount)
				for i := range topics {
					topics[i] = pop()
				}
				ov, ok1 := toSize(off)
				sv, ok2 := toSize(size)
				if !ok1 || !ok2 {
					return fault(fmt.Errorf("evm: log range out of bounds"))
				}
				res.GasUsed += logGas(sv)
				data, err := mem.slice(ov, sv)
				if err != nil {
					return fault(err)
				}
				res.Logs = append(res.Logs, LogRecord{Topics: topics, Data: data})
			case CALL, CALLCODE, DELEGATECALL, STATICCALL:
				if in.world == nil || in.account == nil {
					// Standalone mode: external calls are stubbed.
					for i := 0; i < info.pops; i++ {
						pop()
					}
					push(OneWord)
					break
				}
				callGas, _ := pop().Uint64()
				target := pop()
				value := ZeroWord
				if op == CALL || op == CALLCODE {
					value = pop()
				}
				argsOff, argsLen, retOff, retLen := pop(), pop(), pop(), pop()
				ao, okA := toSize(argsOff)
				al, okB := toSize(argsLen)
				ro, okC := toSize(retOff)
				rl, okD := toSize(retLen)
				if !okA || !okB || !okC || !okD {
					return fault(fmt.Errorf("evm: call memory range out of bounds"))
				}
				input, err := mem.slice(ao, al)
				if err != nil {
					return fault(err)
				}
				if (op == CALL || op == CALLCODE) && ctx.Static && !value.IsZero() {
					return fault(ErrWriteProtection)
				}
				child, okCall := in.world.nestedCall(callParams{
					kind:         op,
					caller:       in.account,
					target:       target,
					value:        value,
					input:        input,
					static:       ctx.Static || op == STATICCALL,
					depth:        in.depth + 1,
					gas:          callGas,
					parentCaller: ctx.Caller,
					parentValue:  ctx.Value,
				})
				lastReturn = child.ReturnData
				res.StorageWrites += child.StorageWrites
				res.Logs = append(res.Logs, child.Logs...)
				res.GasUsed += child.GasUsed
				if rl > 0 {
					n := rl
					if uint64(len(lastReturn)) < n {
						n = uint64(len(lastReturn))
					}
					if err := mem.copyFrom(ro, lastReturn, 0, n); err != nil {
						return fault(err)
					}
				}
				if okCall {
					push(OneWord)
				} else {
					push(ZeroWord)
				}
			case CREATE, CREATE2:
				for i := 0; i < info.pops; i++ {
					pop()
				}
				push(ZeroWord)
			case RETURN:
				off, size := pop(), pop()
				ov, ok1 := toSize(off)
				sv, ok2 := toSize(size)
				if !ok1 || !ok2 {
					return fault(fmt.Errorf("evm: return range out of bounds"))
				}
				data, err := mem.slice(ov, sv)
				if err != nil {
					return fault(err)
				}
				res.ReturnData = data
				return res
			case REVERT:
				off, size := pop(), pop()
				ov, ok1 := toSize(off)
				sv, ok2 := toSize(size)
				if ok1 && ok2 {
					res.ReturnData, _ = mem.slice(ov, sv)
				}
				res.Reverted = true
				return res
			case INVALID:
				return fault(ErrInvalidOpcode)
			case SELFDESTRUCT:
				if ctx.Static {
					return fault(ErrWriteProtection)
				}
				pop()
				return res
			default:
				return fault(fmt.Errorf("evm: unhandled opcode %s", op))
			}
		}
		pc = nextPC
	}
}

// ExtractRuntime executes deployment bytecode (constructor/init code) and
// returns the runtime bytecode it deploys -- the RETURN payload of the init
// execution. This is how a tool pointed at a deployment transaction obtains
// the code SigRec analyzes.
func ExtractRuntime(deployCode []byte) ([]byte, error) {
	in := NewInterpreter(deployCode)
	res := in.Execute(CallContext{StepLimit: 1 << 16})
	if res.Err != nil {
		return nil, fmt.Errorf("evm: init code faulted: %w", res.Err)
	}
	if res.Reverted {
		return nil, errors.New("evm: init code reverted")
	}
	if len(res.ReturnData) == 0 {
		return nil, errors.New("evm: init code returned no runtime bytecode")
	}
	return res.ReturnData, nil
}

// calldataLoad implements CALLDATALOAD semantics: 32 bytes from offset,
// zero-padded past the end; enormous offsets read all zeros.
func calldataLoad(data []byte, off Word) Word {
	ov, ok := off.Uint64()
	if !ok || ov > uint64(len(data)) {
		return ZeroWord
	}
	var buf [32]byte
	copy(buf[:], data[ov:])
	return WordFromBytes(buf[:])
}
