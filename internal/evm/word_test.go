package evm

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomWord draws words with a mix of magnitudes so property tests cover
// small values, boundary values, and full-width values.
func randomWord(r *rand.Rand) Word {
	switch r.Intn(5) {
	case 0:
		return WordFromUint64(r.Uint64() % 1024)
	case 1:
		return WordFromUint64(r.Uint64())
	case 2:
		return MaxWord.Sub(WordFromUint64(r.Uint64() % 1024))
	case 3:
		return HighMask(uint(1 + r.Intn(256)))
	default:
		var w Word
		for i := range w.limbs {
			w.limbs[i] = r.Uint64()
		}
		return w
	}
}

// Generate implements quick.Generator for Word.
func (Word) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomWord(r))
}

func mod256(v *big.Int) *big.Int {
	m := new(big.Int).Mod(v, wordModulus())
	if m.Sign() < 0 {
		m.Add(m, wordModulus())
	}
	return m
}

func TestWordRoundTrips(t *testing.T) {
	cases := []string{
		"0x0", "0x1", "0xff", "0xdeadbeef",
		"0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"[:66],
		"0xa9059cbb000000000000000000000000000000000000000000000000000000ff"[:66],
	}
	for _, tc := range cases {
		w, err := WordFromHex(tc)
		if err != nil {
			t.Fatalf("WordFromHex(%q): %v", tc, err)
		}
		back := WordFromBig(w.Big())
		if !w.Eq(back) {
			t.Errorf("big round trip %q: got %v", tc, back)
		}
		b32 := w.Bytes32()
		if got := WordFromBytes(b32[:]); !got.Eq(w) {
			t.Errorf("bytes round trip %q: got %v", tc, got)
		}
	}
}

func TestWordBasicOps(t *testing.T) {
	two := WordFromUint64(2)
	three := WordFromUint64(3)
	tests := []struct {
		name string
		got  Word
		want Word
	}{
		{"add", two.Add(three), WordFromUint64(5)},
		{"add overflow", MaxWord.Add(OneWord), ZeroWord},
		{"sub", three.Sub(two), OneWord},
		{"sub underflow", ZeroWord.Sub(OneWord), MaxWord},
		{"mul", two.Mul(three), WordFromUint64(6)},
		{"div", WordFromUint64(7).Div(two), three},
		{"div by zero", three.Div(ZeroWord), ZeroWord},
		{"mod", WordFromUint64(7).Mod(three), OneWord},
		{"mod by zero", three.Mod(ZeroWord), ZeroWord},
		{"exp", two.Exp(WordFromUint64(10)), WordFromUint64(1024)},
		{"exp zero", two.Exp(ZeroWord), OneWord},
		{"shl", OneWord.Shl(WordFromUint64(255)), HighMask(1)},
		{"shl 256", OneWord.Shl(WordFromUint64(256)), ZeroWord},
		{"shr", HighMask(1).Shr(WordFromUint64(255)), OneWord},
		{"sar negative", MaxWord.Sar(WordFromUint64(17)), MaxWord},
		{"sar positive", WordFromUint64(8).Sar(WordFromUint64(2)), two},
		{"byte 31", WordFromUint64(0xab).Byte(WordFromUint64(31)), WordFromUint64(0xab)},
		{"byte 0", HighMask(8).Byte(ZeroWord), WordFromUint64(0xff)},
		{"byte oob", MaxWord.Byte(WordFromUint64(32)), ZeroWord},
		{"iszero of zero", ZeroWord.IsZeroWord(), OneWord},
		{"iszero of one", OneWord.IsZeroWord(), ZeroWord},
		{"lt", two.Lt(three), OneWord},
		{"gt", two.Gt(three), ZeroWord},
		{"slt negative", MaxWord.Slt(OneWord), OneWord}, // -1 < 1
		{"sgt negative", MaxWord.Sgt(OneWord), ZeroWord},
	}
	for _, tc := range tests {
		if !tc.got.Eq(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestWordSignedOps(t *testing.T) {
	negOne := MaxWord
	negSeven := WordFromUint64(7).Neg()
	two := WordFromUint64(2)
	if got := negSeven.SDiv(two); !got.Eq(WordFromUint64(3).Neg()) {
		t.Errorf("SDiv(-7,2) = %v, want -3", got)
	}
	if got := negSeven.SMod(two); !got.Eq(negOne) {
		t.Errorf("SMod(-7,2) = %v, want -1", got)
	}
	minInt := HighMask(1)
	if got := minInt.SDiv(negOne); !got.Eq(minInt) {
		t.Errorf("SDiv(min,-1) = %v, want min", got)
	}
	if got := OneWord.SDiv(ZeroWord); !got.IsZero() {
		t.Errorf("SDiv by zero = %v, want 0", got)
	}
}

func TestSignExtend(t *testing.T) {
	tests := []struct {
		k    uint64
		in   Word
		want Word
	}{
		{0, WordFromUint64(0x7f), WordFromUint64(0x7f)},
		{0, WordFromUint64(0x80), MaxWord.Sub(WordFromUint64(0x7f))},
		{1, WordFromUint64(0x8000), MaxWord.Sub(WordFromUint64(0x7fff))},
		{1, WordFromUint64(0x7fff), WordFromUint64(0x7fff)},
		{31, MaxWord, MaxWord},
		{200, WordFromUint64(0x80), WordFromUint64(0x80)},
	}
	for _, tc := range tests {
		if got := tc.in.SignExtend(WordFromUint64(tc.k)); !got.Eq(tc.want) {
			t.Errorf("SignExtend(%d, %v) = %v, want %v", tc.k, tc.in, got, tc.want)
		}
	}
}

func TestMasks(t *testing.T) {
	if got := LowMask(8); !got.Eq(WordFromUint64(0xff)) {
		t.Errorf("LowMask(8) = %v", got)
	}
	if got := LowMask(0); !got.IsZero() {
		t.Errorf("LowMask(0) = %v", got)
	}
	if got := LowMask(256); !got.Eq(MaxWord) {
		t.Errorf("LowMask(256) = %v", got)
	}
	if got := HighMask(32).Or(LowMask(224)); !got.Eq(MaxWord) {
		t.Errorf("HighMask(32)|LowMask(224) = %v", got)
	}
	if !HighMask(32).And(LowMask(224)).IsZero() {
		t.Error("HighMask(32)&LowMask(224) should be zero")
	}
}

// Property tests comparing every arithmetic operation against math/big.

func TestWordPropsVsBig(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	type binOp struct {
		name string
		word func(a, b Word) Word
		big  func(a, b *big.Int) *big.Int
	}
	ops := []binOp{
		{"add", Word.Add, func(a, b *big.Int) *big.Int { return new(big.Int).Add(a, b) }},
		{"sub", Word.Sub, func(a, b *big.Int) *big.Int { return new(big.Int).Sub(a, b) }},
		{"mul", Word.Mul, func(a, b *big.Int) *big.Int { return new(big.Int).Mul(a, b) }},
		{"and", Word.And, func(a, b *big.Int) *big.Int { return new(big.Int).And(a, b) }},
		{"or", Word.Or, func(a, b *big.Int) *big.Int { return new(big.Int).Or(a, b) }},
		{"xor", Word.Xor, func(a, b *big.Int) *big.Int { return new(big.Int).Xor(a, b) }},
		{"div", Word.Div, func(a, b *big.Int) *big.Int {
			if b.Sign() == 0 {
				return new(big.Int)
			}
			return new(big.Int).Quo(a, b)
		}},
		{"mod", Word.Mod, func(a, b *big.Int) *big.Int {
			if b.Sign() == 0 {
				return new(big.Int)
			}
			return new(big.Int).Rem(a, b)
		}},
	}
	for _, op := range ops {
		op := op
		t.Run(op.name, func(t *testing.T) {
			f := func(a, b Word) bool {
				got := op.word(a, b)
				want := WordFromBig(op.big(a.Big(), b.Big()))
				return got.Eq(want)
			}
			if err := quick.Check(f, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestWordShiftPropsVsBig(t *testing.T) {
	f := func(a Word, nRaw uint16) bool {
		n := uint(nRaw % 300)
		nw := WordFromUint64(uint64(n))
		shl := a.Shl(nw)
		shr := a.Shr(nw)
		var wantShl, wantShr *big.Int
		if n >= 256 {
			wantShl, wantShr = new(big.Int), new(big.Int)
		} else {
			wantShl = mod256(new(big.Int).Lsh(a.Big(), n))
			wantShr = new(big.Int).Rsh(a.Big(), n)
		}
		return shl.Eq(WordFromBig(wantShl)) && shr.Eq(WordFromBig(wantShr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestWordSignedPropsVsBig(t *testing.T) {
	f := func(a, b Word) bool {
		if b.IsZero() {
			return a.SDiv(b).IsZero() && a.SMod(b).IsZero()
		}
		as, bs := a.SignedBig(), b.SignedBig()
		wantQ := WordFromBig(new(big.Int).Quo(as, bs))
		wantR := WordFromBig(new(big.Int).Rem(as, bs))
		return a.SDiv(b).Eq(wantQ) && a.SMod(b).Eq(wantR)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestWordSignExtendPropVsBig(t *testing.T) {
	f := func(a Word, kRaw uint8) bool {
		k := uint64(kRaw % 40)
		got := a.SignExtend(WordFromUint64(k))
		if k >= 31 {
			return got.Eq(a)
		}
		bits := (k + 1) * 8
		low := a.Big()
		low.And(low, LowMask(uint(bits)).Big())
		if low.Bit(int(bits-1)) == 1 {
			ext := HighMask(uint(256 - bits)).Big()
			low.Or(low, ext)
		}
		return got.Eq(WordFromBig(low))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestWordModularPropsVsBig(t *testing.T) {
	f := func(a, b, m Word) bool {
		gotA, gotM := a.AddMod(b, m), a.MulMod(b, m)
		if m.IsZero() {
			return gotA.IsZero() && gotM.IsZero()
		}
		wantA := WordFromBig(new(big.Int).Mod(new(big.Int).Add(a.Big(), b.Big()), m.Big()))
		wantM := WordFromBig(new(big.Int).Mod(new(big.Int).Mul(a.Big(), b.Big()), m.Big()))
		return gotA.Eq(wantA) && gotM.Eq(wantM)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWordExpPropVsBig(t *testing.T) {
	f := func(a Word, eRaw uint8) bool {
		e := WordFromUint64(uint64(eRaw))
		got := a.Exp(e)
		want := WordFromBig(new(big.Int).Exp(a.Big(), e.Big(), wordModulus()))
		return got.Eq(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWordComparisonProps(t *testing.T) {
	f := func(a, b Word) bool {
		cmpBig := a.Big().Cmp(b.Big())
		if a.Cmp(b) != cmpBig {
			return false
		}
		scmpBig := a.SignedBig().Cmp(b.SignedBig())
		return a.Scmp(b) == scmpBig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestWordSarPropVsBig(t *testing.T) {
	f := func(a Word, nRaw uint16) bool {
		n := uint(nRaw % 300)
		got := a.Sar(WordFromUint64(uint64(n)))
		want := new(big.Int).Rsh(a.SignedBig(), n)
		return got.Eq(WordFromBig(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestWordHex(t *testing.T) {
	if got := ZeroWord.Hex(); got != "0x0" {
		t.Errorf("zero hex = %q", got)
	}
	if got := WordFromUint64(0xa9059cbb).Hex(); got != "0xa9059cbb" {
		t.Errorf("hex = %q", got)
	}
	if _, err := WordFromHex(""); err == nil {
		t.Error("empty hex should fail")
	}
	if _, err := WordFromHex("0x" + string(make([]byte, 100))); err == nil {
		t.Error("oversized hex should fail")
	}
	if _, err := WordFromHex("zz"); err == nil {
		t.Error("invalid hex should fail")
	}
}
