package evm

import (
	"errors"
	"testing"
)

func TestValidateStackDepthClean(t *testing.T) {
	a := NewAssembler()
	body := a.NewLabel()
	a.Push(0).Op(CALLDATALOAD)
	a.JumpI(body)
	a.Op(STOP)
	a.Bind(body)
	a.Push(4).Op(CALLDATALOAD).Push(0).Op(SSTORE)
	a.Op(STOP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if err := Disassemble(code).ValidateStackDepth(); err != nil {
		t.Errorf("clean program rejected: %v", err)
	}
}

func TestValidateStackDepthUnderflow(t *testing.T) {
	code := []byte{byte(ADD), byte(STOP)}
	err := Disassemble(code).ValidateStackDepth()
	if !errors.Is(err, ErrStackCheckUnderflow) {
		t.Errorf("err = %v", err)
	}
}

func TestValidateStackDepthJoinConflict(t *testing.T) {
	// One branch pushes an extra item before the join.
	a := NewAssembler()
	taken := a.NewLabel()
	join := a.NewLabel()
	a.Push(0).Op(CALLDATALOAD)
	a.JumpI(taken)
	a.Push(1) // fall-through height +1
	a.Jump(join)
	a.Bind(taken) // height +0
	a.Jump(join)
	a.Bind(join)
	a.Op(STOP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	err = Disassemble(code).ValidateStackDepth()
	if !errors.Is(err, ErrStackCheckConflict) {
		t.Errorf("err = %v", err)
	}
}

func TestValidateStackDepthEmpty(t *testing.T) {
	if err := Disassemble(nil).ValidateStackDepth(); err != nil {
		t.Errorf("empty program: %v", err)
	}
}

func TestValidateStackDepthLoop(t *testing.T) {
	// A loop that keeps its counter on the stack must validate: the back
	// edge re-enters the header at the same height.
	a := NewAssembler()
	top := a.NewLabel()
	exit := a.NewLabel()
	a.Push(0)
	a.Bind(top)
	a.Dup(1).Push(5).Swap(1).Op(LT).Op(ISZERO)
	a.JumpI(exit)
	a.Push(1).Op(ADD)
	a.Jump(top)
	a.Bind(exit)
	a.Op(POP).Op(STOP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if err := Disassemble(code).ValidateStackDepth(); err != nil {
		t.Errorf("loop rejected: %v", err)
	}
}

func TestValidateStackDepthUnbalancedLoop(t *testing.T) {
	// A loop that leaks one stack item per iteration must be rejected.
	a := NewAssembler()
	top := a.NewLabel()
	exit := a.NewLabel()
	a.Push(0)
	a.Bind(top)
	a.Dup(1).Push(5).Swap(1).Op(LT).Op(ISZERO)
	a.JumpI(exit)
	a.Push(1).Op(ADD)
	a.Push(99) // the leak
	a.Jump(top)
	a.Bind(exit)
	a.Op(POP).Op(STOP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	err = Disassemble(code).ValidateStackDepth()
	if !errors.Is(err, ErrStackCheckConflict) {
		t.Errorf("err = %v", err)
	}
}
