package evm

import "testing"

func TestDominatorsDiamond(t *testing.T) {
	// 0 -> {1, 2}; 1 -> 3; 2 -> 3: block 0 dominates all, 3 is dominated
	// only by 0 (and itself).
	g := buildCFG(t, func(a *Assembler) {
		left := a.NewLabel()
		join := a.NewLabel()
		a.Push(0).Op(CALLDATALOAD)
		a.JumpI(left) // block 0
		a.Push(1).Op(POP)
		a.Jump(join) // block 1 (fall-through)
		a.Bind(left) // block 2
		a.Push(2).Op(POP)
		a.Jump(join)
		a.Bind(join) // block 3
		a.Op(STOP)
	})
	d := g.Dominators()
	if len(g.Blocks) != 4 {
		t.Fatalf("%d blocks", len(g.Blocks))
	}
	for b := 0; b < 4; b++ {
		if !d.Dominates(0, b) {
			t.Errorf("entry must dominate block %d", b)
		}
	}
	if d.Dominates(1, 3) || d.Dominates(2, 3) {
		t.Error("neither diamond arm dominates the join")
	}
	if d.Idom[3] != 0 {
		t.Errorf("idom(join) = %d, want 0", d.Idom[3])
	}
	if !d.Dominates(3, 3) {
		t.Error("dominance must be reflexive")
	}
}

func TestDominatorsLoop(t *testing.T) {
	g := buildCFG(t, func(a *Assembler) {
		top := a.NewLabel()
		exit := a.NewLabel()
		a.Push(0)
		a.Bind(top) // loop header
		a.Dup(1).Push(5).Swap(1).Op(LT).Op(ISZERO)
		a.JumpI(exit)
		a.Push(1).Op(ADD) // body
		a.Jump(top)
		a.Bind(exit)
		a.Op(STOP)
	})
	d := g.Dominators()
	// Find the header block (the one with a back-edge predecessor).
	header := -1
	for i, preds := range g.Preds {
		for _, p := range preds {
			if p > i {
				header = i
			}
		}
	}
	if header < 0 {
		t.Fatal("no loop header found")
	}
	// The header dominates the body and the exit.
	for b := header + 1; b < len(g.Blocks); b++ {
		if !d.Dominates(header, b) {
			t.Errorf("header %d must dominate block %d", header, b)
		}
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	g := buildCFG(t, func(a *Assembler) {
		a.Op(STOP)
		a.Op(JUMPDEST) // dead block
		a.Op(STOP)
	})
	d := g.Dominators()
	if d.Idom[1] != -1 {
		t.Errorf("dead block idom = %d, want -1", d.Idom[1])
	}
	if d.Dominates(0, 1) {
		t.Error("nothing dominates an unreachable block")
	}
}

func TestDominatorsEmpty(t *testing.T) {
	d := Disassemble(nil).CFG().Dominators()
	if len(d.Idom) != 0 {
		t.Error("empty graph should have no idoms")
	}
}

// TestDominatorsAgreeWithGuardScopes: on generated loop code, the TASE
// guard-interval approximation must agree with real dominance: the loop
// guard block dominates the loop body.
func TestDominatorsAgreeWithGuardScopes(t *testing.T) {
	g := buildCFG(t, func(a *Assembler) {
		// Two sequential loops: the first guard must NOT dominate... it
		// does dominate in straight-line composition; the meaningful check
		// is that each body is dominated by its own guard block.
		for l := 0; l < 2; l++ {
			top := a.NewLabel()
			exit := a.NewLabel()
			a.Push(0)
			a.Bind(top)
			a.Dup(1).Push(3).Swap(1).Op(LT).Op(ISZERO)
			a.JumpI(exit)
			a.Push(1).Op(ADD)
			a.Jump(top)
			a.Bind(exit)
			a.Op(POP)
		}
		a.Op(STOP)
	})
	d := g.Dominators()
	reach := g.Reachable()
	for b := range g.Blocks {
		if reach[b] && !d.Dominates(0, b) {
			t.Errorf("entry must dominate reachable block %d", b)
		}
	}
}
