package evm

import "sort"

// CFG is a control-flow graph over basic blocks with statically resolvable
// edges: jump targets are recovered from the PUSH immediately feeding each
// JUMP/JUMPI (the pattern every compiler here emits); computed targets
// yield no edge.
type CFG struct {
	Blocks []BasicBlock
	// Succs[i] lists successor block indexes of Blocks[i], sorted.
	Succs [][]int
	// Preds[i] lists predecessor block indexes, sorted.
	Preds [][]int
}

// CFG builds the control-flow graph.
func (p *Program) CFG() *CFG {
	blocks := p.BasicBlocks()
	g := &CFG{
		Blocks: blocks,
		Succs:  make([][]int, len(blocks)),
		Preds:  make([][]int, len(blocks)),
	}
	blockAt := make(map[uint64]int, len(blocks))
	for i, b := range blocks {
		blockAt[b.Start] = i
	}
	addEdge := func(from, to int) {
		g.Succs[from] = append(g.Succs[from], to)
		g.Preds[to] = append(g.Preds[to], from)
	}
	for i, b := range blocks {
		last := p.Instructions[b.Last]
		switch last.Op {
		case JUMP:
			if t, ok := p.staticTarget(b.Last); ok {
				if ti, hit := blockAt[t]; hit {
					addEdge(i, ti)
				}
			}
		case JUMPI:
			if t, ok := p.staticTarget(b.Last); ok {
				if ti, hit := blockAt[t]; hit {
					addEdge(i, ti)
				}
			}
			if i+1 < len(blocks) {
				addEdge(i, i+1)
			}
		default:
			if !last.Op.IsTerminator() && i+1 < len(blocks) {
				addEdge(i, i+1)
			}
		}
	}
	for i := range g.Succs {
		sort.Ints(g.Succs[i])
		sort.Ints(g.Preds[i])
	}
	return g
}

// staticTarget resolves the jump target of the instruction at index when a
// PUSH immediately precedes it and names a JUMPDEST.
func (p *Program) staticTarget(idx int) (uint64, bool) {
	if idx == 0 {
		return 0, false
	}
	prev := p.Instructions[idx-1]
	if !prev.Op.IsPush() {
		return 0, false
	}
	t, ok := prev.Arg.Uint64()
	if !ok || !p.IsJumpDest(t) {
		return 0, false
	}
	return t, true
}

// Reachable returns the set of block indexes reachable from the entry.
func (g *CFG) Reachable() map[int]bool {
	seen := make(map[int]bool)
	if len(g.Blocks) == 0 {
		return seen
	}
	stack := []int{0}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, g.Succs[b]...)
	}
	return seen
}

// HasBackEdge reports whether the graph contains a loop (an edge to a block
// that starts at or before the source block).
func (g *CFG) HasBackEdge() bool {
	for i, succs := range g.Succs {
		for _, s := range succs {
			if s <= i {
				return true
			}
		}
	}
	return false
}
