package evm

// Dominator analysis over the CFG, using the Cooper-Harvey-Kennedy
// iterative algorithm. Dominance is the precise form of the control-
// dependence question TASE approximates with guard intervals; the analysis
// is exposed for tooling (cmd/evmdis) and validation tests.

// Dominators holds the immediate-dominator tree of a CFG.
type Dominators struct {
	// Idom[i] is the immediate dominator of block i; the entry block is
	// its own idom. Unreachable blocks have Idom -1.
	Idom []int
	cfg  *CFG
	// rpoNumber orders blocks by reverse postorder.
	rpoNumber []int
}

// Dominators computes the dominator tree from the entry block.
func (g *CFG) Dominators() *Dominators {
	n := len(g.Blocks)
	d := &Dominators{
		Idom:      make([]int, n),
		cfg:       g,
		rpoNumber: make([]int, n),
	}
	for i := range d.Idom {
		d.Idom[i] = -1
	}
	if n == 0 {
		return d
	}
	// Reverse postorder from the entry.
	var order []int
	visited := make([]bool, n)
	var dfs func(b int)
	dfs = func(b int) {
		visited[b] = true
		for _, s := range g.Succs[b] {
			if !visited[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(0)
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for idx, b := range order {
		d.rpoNumber[b] = idx
	}
	d.Idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Preds[b] {
				if !visited[p] || d.Idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
					continue
				}
				newIdom = d.intersect(p, newIdom)
			}
			if newIdom != -1 && d.Idom[b] != newIdom {
				d.Idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

// intersect walks the two candidate dominators up the tree to their
// common ancestor in reverse postorder.
func (d *Dominators) intersect(a, b int) int {
	for a != b {
		for d.rpoNumber[a] > d.rpoNumber[b] {
			a = d.Idom[a]
		}
		for d.rpoNumber[b] > d.rpoNumber[a] {
			b = d.Idom[b]
		}
	}
	return a
}

// Dominates reports whether block a dominates block b (reflexive).
func (d *Dominators) Dominates(a, b int) bool {
	if d.Idom[b] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == 0 {
			return a == 0
		}
		b = d.Idom[b]
		if b == -1 {
			return false
		}
	}
}
