package evm

import (
	"errors"
	"fmt"
)

// World is a minimal multi-contract chain state: accounts with code,
// storage, and balances. With a World attached, the interpreter executes
// CALL/CALLCODE/DELEGATECALL/STATICCALL for real -- nested execution, value
// transfer, return-data plumbing, and rollback of state changes when a
// callee reverts (via a write journal).
type World struct {
	accounts map[Word]*Account
	journal  []journalEntry
}

// Account is one contract or externally-owned account.
type Account struct {
	Address Word
	Code    []byte
	Storage Storage
	Balance Word

	program *Program
}

type journalEntry struct {
	acc     *Account
	key     Word
	prev    Word
	existed bool
	// balance rollback
	balanceOf   *Account
	prevBalance Word
	isBalance   bool
}

// World errors.
var (
	ErrNoAccount    = errors.New("evm: no such account")
	ErrCallDepth    = errors.New("evm: call depth exceeded")
	ErrInsufficient = errors.New("evm: insufficient balance")
)

// maxCallDepth bounds nested calls (the real limit is 1024; tests need far
// less and a smaller bound fails fast on accidental recursion).
const maxCallDepth = 128

// NewWorld returns an empty world.
func NewWorld() *World {
	return &World{accounts: make(map[Word]*Account)}
}

// Deploy installs runtime bytecode at an address.
func (w *World) Deploy(addr Word, code []byte) *Account {
	acc := &Account{
		Address: addr,
		Code:    code,
		Storage: make(Storage),
		program: Disassemble(code),
	}
	w.accounts[addr] = acc
	return acc
}

// DeployInit executes deployment bytecode and installs the returned
// runtime at the address.
func (w *World) DeployInit(addr Word, initCode []byte) (*Account, error) {
	runtime, err := ExtractRuntime(initCode)
	if err != nil {
		return nil, err
	}
	return w.Deploy(addr, runtime), nil
}

// Account returns the account at an address.
func (w *World) Account(addr Word) (*Account, bool) {
	acc, ok := w.accounts[addr]
	return acc, ok
}

// Fund credits a balance (creating an account without code if needed).
func (w *World) Fund(addr Word, amount Word) {
	acc, ok := w.accounts[addr]
	if !ok {
		acc = &Account{Address: addr, Storage: make(Storage), program: Disassemble(nil)}
		w.accounts[addr] = acc
	}
	acc.Balance = acc.Balance.Add(amount)
}

// snapshot marks the journal position for later rollback.
func (w *World) snapshot() int { return len(w.journal) }

// revertTo unwinds every write after the snapshot.
func (w *World) revertTo(snap int) {
	for i := len(w.journal) - 1; i >= snap; i-- {
		e := w.journal[i]
		switch {
		case e.isBalance:
			e.balanceOf.Balance = e.prevBalance
		case e.existed:
			e.acc.Storage[e.key] = e.prev
		default:
			delete(e.acc.Storage, e.key)
		}
	}
	w.journal = w.journal[:snap]
}

// writeStorage journals and applies one storage write.
func (w *World) writeStorage(acc *Account, key, val Word) {
	prev, existed := acc.Storage[key]
	w.journal = append(w.journal, journalEntry{acc: acc, key: key, prev: prev, existed: existed})
	acc.Storage[key] = val
}

// transfer journals and applies a balance move.
func (w *World) transfer(from, to *Account, amount Word) error {
	if amount.IsZero() {
		return nil
	}
	if from.Balance.Cmp(amount) < 0 {
		return ErrInsufficient
	}
	w.journal = append(w.journal,
		journalEntry{isBalance: true, balanceOf: from, prevBalance: from.Balance},
		journalEntry{isBalance: true, balanceOf: to, prevBalance: to.Balance},
	)
	from.Balance = from.Balance.Sub(amount)
	to.Balance = to.Balance.Add(amount)
	return nil
}

// Call executes a message call from an externally-owned account. State
// changes persist on success and roll back entirely on revert or fault.
func (w *World) Call(from, to Word, callData []byte, value Word, gas uint64) (ExecResult, error) {
	callee, ok := w.accounts[to]
	if !ok {
		return ExecResult{}, fmt.Errorf("%w: %s", ErrNoAccount, to)
	}
	caller, ok := w.accounts[from]
	if !ok {
		w.Fund(from, ZeroWord)
		caller = w.accounts[from]
	}
	snap := w.snapshot()
	if err := w.transfer(caller, callee, value); err != nil {
		return ExecResult{}, err
	}
	in := &Interpreter{
		program: callee.program,
		storage: callee.Storage,
		world:   w,
		account: callee,
	}
	res := in.Execute(CallContext{
		CallData: callData,
		Caller:   from,
		Address:  to,
		Value:    value,
		Gas:      gas,
	})
	if res.Reverted {
		w.revertTo(snap)
	} else if snap == 0 {
		// A committed top-level call can never be rolled back: release the
		// journal so long-running worlds do not grow without bound.
		w.journal = w.journal[:0]
	}
	return res, nil
}

// callFrame is the interpreter's entry point for nested calls.
type callParams struct {
	kind   Op // CALL, CALLCODE, DELEGATECALL, STATICCALL
	caller *Account
	target Word
	value  Word
	input  []byte
	static bool
	depth  int
	gas    uint64
	// parentCaller and parentValue propagate through DELEGATECALL, which
	// keeps the original msg.sender and msg.value.
	parentCaller Word
	parentValue  Word
}

// nestedCall runs a call frame, handling storage context per call kind:
// CALL runs the callee's code on the callee's storage; DELEGATECALL and
// CALLCODE run the callee's code on the *caller's* storage.
func (w *World) nestedCall(p callParams) (ExecResult, bool) {
	if p.depth > maxCallDepth {
		return ExecResult{Reverted: true, Err: ErrCallDepth}, false
	}
	target, ok := w.accounts[p.target]
	if !ok {
		// Calling an empty account succeeds vacuously (value may move).
		if p.kind == CALL && !p.value.IsZero() {
			w.Fund(p.target, ZeroWord)
			if err := w.transfer(p.caller, w.accounts[p.target], p.value); err != nil {
				return ExecResult{Reverted: true, Err: err}, false
			}
		}
		return ExecResult{}, true
	}
	snap := w.snapshot()
	stateAcc := target
	selfAddr := p.target
	if p.kind == DELEGATECALL || p.kind == CALLCODE {
		stateAcc = p.caller
		selfAddr = p.caller.Address
	}
	if p.kind == CALL && !p.value.IsZero() {
		if err := w.transfer(p.caller, target, p.value); err != nil {
			return ExecResult{Reverted: true, Err: err}, false
		}
	}
	in := &Interpreter{
		program: target.program,
		storage: stateAcc.Storage,
		world:   w,
		account: stateAcc,
		depth:   p.depth,
	}
	callerAddr, callValue := p.caller.Address, p.value
	if p.kind == DELEGATECALL {
		// DELEGATECALL preserves the original msg.sender and msg.value.
		callerAddr, callValue = p.parentCaller, p.parentValue
	}
	res := in.Execute(CallContext{
		CallData: p.input,
		Caller:   callerAddr,
		Address:  selfAddr,
		Value:    callValue,
		Static:   p.static,
		Gas:      p.gas,
	})
	if res.Reverted {
		w.revertTo(snap)
		return res, false
	}
	return res, true
}
