package evm

import (
	"math/big"
	"math/rand"
	"testing"
)

// These tests target the limb-native arithmetic fast paths (power-of-two
// and <= 64-bit divisors/moduli, square-and-multiply Exp, sign-adjusted
// SDiv/SMod) against the math/big oracle, drawing operands shaped to force
// each branch rather than relying on the generic generators to hit them.

// fastDivisor draws nonzero divisors that exercise the fast paths: powers
// of two across the full width and arbitrary 64-bit values.
func fastDivisor(r *rand.Rand) Word {
	switch r.Intn(3) {
	case 0:
		return OneWord.Shl(WordFromUint64(uint64(r.Intn(256))))
	case 1:
		return WordFromUint64(r.Uint64()%1024 + 1)
	default:
		return WordFromUint64(r.Uint64() | 1)
	}
}

func TestWordDivModFastPathsVsBig(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		w := randomWord(r)
		o := fastDivisor(r)
		wantQ := new(big.Int).Quo(w.Big(), o.Big())
		wantR := new(big.Int).Rem(w.Big(), o.Big())
		if got := w.Div(o); got.Big().Cmp(wantQ) != 0 {
			t.Fatalf("Div(%v, %v) = %v, want %v", w, o, got, wantQ)
		}
		if got := w.Mod(o); got.Big().Cmp(wantR) != 0 {
			t.Fatalf("Mod(%v, %v) = %v, want %v", w, o, got, wantR)
		}
	}
}

func TestWordSignedDivModFastPathsVsBig(t *testing.T) {
	minInt256 := HighMask(1) // -2^255
	negOne := MaxWord
	// The EVM-defined overflow case: SDIV(minInt256, -1) wraps to minInt256.
	if got := minInt256.SDiv(negOne); !got.Eq(minInt256) {
		t.Fatalf("SDiv(min, -1) = %v, want %v", got, minInt256)
	}
	if got := minInt256.SMod(negOne); !got.IsZero() {
		t.Fatalf("SMod(min, -1) = %v, want 0", got)
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		w := randomWord(r)
		o := fastDivisor(r)
		if r.Intn(2) == 0 {
			w = w.Neg()
		}
		if r.Intn(2) == 0 {
			o = o.Neg()
		}
		if o.IsZero() {
			continue
		}
		wantQ := mod256(new(big.Int).Quo(w.SignedBig(), o.SignedBig()))
		wantR := mod256(new(big.Int).Rem(w.SignedBig(), o.SignedBig()))
		if got := w.SDiv(o); got.Big().Cmp(wantQ) != 0 {
			t.Fatalf("SDiv(%v, %v) = %v, want %v", w, o, got, wantQ)
		}
		if got := w.SMod(o); got.Big().Cmp(wantR) != 0 {
			t.Fatalf("SMod(%v, %v) = %v, want %v", w, o, got, wantR)
		}
	}
}

func TestWordModularFastPathsVsBig(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 20000; i++ {
		w, o := randomWord(r), randomWord(r)
		m := fastDivisor(r)
		sum := new(big.Int).Add(w.Big(), o.Big())
		wantAdd := sum.Mod(sum, m.Big())
		if got := w.AddMod(o, m); got.Big().Cmp(wantAdd) != 0 {
			t.Fatalf("AddMod(%v, %v, %v) = %v, want %v", w, o, m, got, wantAdd)
		}
		prod := new(big.Int).Mul(w.Big(), o.Big())
		wantMul := prod.Mod(prod, m.Big())
		if got := w.MulMod(o, m); got.Big().Cmp(wantMul) != 0 {
			t.Fatalf("MulMod(%v, %v, %v) = %v, want %v", w, o, m, got, wantMul)
		}
	}
}

func TestWordExpFastPathsVsBig(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 5000; i++ {
		var base Word
		switch r.Intn(3) {
		case 0: // power-of-two base, the shift fast path
			base = OneWord.Shl(WordFromUint64(uint64(r.Intn(256))))
		case 1: // small base, the common contract shape (10^k scaling)
			base = WordFromUint64(r.Uint64()%1000 + 2)
		default:
			base = randomWord(r)
		}
		var exp Word
		switch r.Intn(3) {
		case 0:
			exp = WordFromUint64(uint64(r.Intn(300)))
		case 1:
			exp = WordFromUint64(r.Uint64())
		default:
			exp = randomWord(r)
		}
		want := new(big.Int).Exp(base.Big(), exp.Big(), wordModulus())
		if got := base.Exp(exp); got.Big().Cmp(want) != 0 {
			t.Fatalf("Exp(%v, %v) = %v, want %v", base, exp, got, want)
		}
	}
}

func TestLog2IfPow2(t *testing.T) {
	for k := uint(0); k < 256; k++ {
		w := OneWord.shlUint(k)
		got, ok := w.log2IfPow2()
		if !ok || got != k {
			t.Fatalf("log2IfPow2(2^%d) = %d, %v", k, got, ok)
		}
	}
	for _, w := range []Word{ZeroWord, WordFromUint64(3), WordFromUint64(6), MaxWord, HighMask(2)} {
		if _, ok := w.log2IfPow2(); ok {
			t.Fatalf("log2IfPow2(%v) unexpectedly ok", w)
		}
	}
}
