package evm

// Proxy probing: concrete execution of a suspected forwarder to find the
// DELEGATECALL target. The standalone interpreter (no World) stubs the
// CALL family — operands are popped, a success word is pushed, execution
// continues — so a tracer can watch the stack at the moment DELEGATECALL
// executes and read the target address without any chain state.

// probeStepLimit bounds a probe run. Forwarders reach their DELEGATECALL
// within a few dozen instructions; anything that runs longer is not a
// simple facade and the probe gives up.
const probeStepLimit = 4096

// probeCallData is a plausible call — 4-byte selector plus one argument
// word — so CALLDATASIZE-driven forwarders see a nonzero payload.
var probeCallData = append([]byte{0xde, 0xad, 0xbe, 0xef}, make([]byte, 32)...)

// DelegateTarget executes code concretely and reports the target address
// of the first DELEGATECALL it performs. ok is false when execution
// finishes (or exhausts stepLimit, <=0 meaning the default budget)
// without delegating. The returned word is masked to address width.
func DelegateTarget(code []byte, stepLimit int) (Word, bool) {
	if len(code) == 0 {
		return ZeroWord, false
	}
	if stepLimit <= 0 {
		stepLimit = probeStepLimit
	}
	var (
		target Word
		found  bool
	)
	in := NewInterpreter(code)
	in.Execute(CallContext{
		CallData:  probeCallData,
		StepLimit: stepLimit,
		Tracer: func(st TraceStep) {
			// Stack view is top-last: gas on top, target beneath it.
			if found || st.Op != DELEGATECALL || len(st.Stack) < 6 {
				return
			}
			target = st.Stack[len(st.Stack)-2].And(LowMask(160))
			found = true
		},
	})
	return target, found
}
