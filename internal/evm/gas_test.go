package evm

import (
	"errors"
	"testing"
)

func TestGasAccountingBasics(t *testing.T) {
	// PUSH1 3 PUSH1 4 ADD POP STOP: 3+3+3+2+0 = 11
	res := runAsm(t, func(a *Assembler) {
		a.Push(3).Push(4).Op(ADD).Op(POP).Op(STOP)
	}, CallContext{})
	if res.GasUsed != 11 {
		t.Errorf("gas = %d, want 11", res.GasUsed)
	}
}

func TestGasOutOfGas(t *testing.T) {
	res := runAsm(t, func(a *Assembler) {
		top := a.NewLabel()
		a.Bind(top)
		a.Jump(top) // spin forever
	}, CallContext{Gas: 500})
	if !errors.Is(res.Err, ErrOutOfGas) {
		t.Fatalf("err = %v", res.Err)
	}
	if res.GasUsed <= 500-20 {
		t.Errorf("gas used %d well below budget at abort", res.GasUsed)
	}
}

func TestGasMemoryExpansion(t *testing.T) {
	// Touching high memory must cost quadratically more than low memory.
	cost := func(off uint64) uint64 {
		res := runAsm(t, func(a *Assembler) {
			a.Push(1).Push(off).Op(MSTORE)
			a.Push(0).Push(0).Op(MSTORE) // extra step so expansion is billed
			a.Op(STOP)
		}, CallContext{})
		return res.GasUsed
	}
	low := cost(0)
	mid := cost(32 * 1024)
	high := cost(256 * 1024)
	if mid <= low {
		t.Errorf("expansion not charged: low=%d mid=%d", low, mid)
	}
	// Quadratic component: cost growth from mid to high must exceed the
	// linear ratio (8x memory must be more than 8x the expansion cost).
	if (high - low) < 8*(mid-low) {
		t.Errorf("expansion not superlinear: low=%d mid=%d high=%d", low, mid, high)
	}
}

func TestGasStorageWrites(t *testing.T) {
	a := NewAssembler()
	a.Push(1).Push(7).Op(SSTORE) // fresh slot: 20000
	a.Push(2).Push(7).Op(SSTORE) // overwrite: 2900
	a.Op(STOP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res := NewInterpreter(code).Execute(CallContext{})
	if res.GasUsed < gasSStoreSet+gasSStoreReset {
		t.Errorf("gas = %d, want >= %d", res.GasUsed, gasSStoreSet+gasSStoreReset)
	}
	if res.GasUsed > gasSStoreSet+gasSStoreReset+100 {
		t.Errorf("gas = %d, storage dominated expected", res.GasUsed)
	}
}

func TestGasExpByExponentSize(t *testing.T) {
	cost := func(exp Word) uint64 {
		res := runAsm(t, func(a *Assembler) {
			a.PushWord(exp).Push(2).Op(EXP).Op(POP).Op(STOP)
		}, CallContext{})
		return res.GasUsed
	}
	small := cost(WordFromUint64(3))
	big := cost(MaxWord)
	if big-small != 31*gasExpPerByte {
		t.Errorf("exp gas delta = %d, want %d", big-small, 31*gasExpPerByte)
	}
}

func TestGasCopyPerWord(t *testing.T) {
	cost := func(n uint64) uint64 {
		res := runAsm(t, func(a *Assembler) {
			a.Push(n).Push(0).Push(0).Op(CALLDATACOPY)
			a.Op(STOP)
		}, CallContext{CallData: make([]byte, 256)})
		return res.GasUsed
	}
	delta := cost(256) - cost(32)
	if delta < 7*gasCopyPerWord {
		t.Errorf("copy gas delta = %d", delta)
	}
}

func TestGasUnmeteredByDefault(t *testing.T) {
	// Gas==0 means unlimited but still tracked.
	res := runAsm(t, func(a *Assembler) {
		for i := 0; i < 100; i++ {
			a.Push(1).Op(POP)
		}
		a.Op(STOP)
	}, CallContext{})
	if res.Err != nil {
		t.Fatalf("unmetered run failed: %v", res.Err)
	}
	if res.GasUsed == 0 {
		t.Error("gas not tracked")
	}
}
