package evm

import (
	"errors"
	"fmt"
)

// Stack-validation errors.
var (
	// ErrStackCheckUnderflow reports an instruction that would pop more
	// than the stack holds on some path.
	ErrStackCheckUnderflow = errors.New("evm: static stack underflow")
	// ErrStackCheckConflict reports a join point reached with different
	// stack heights -- legal EVM but a bug in stack-disciplined generated
	// code.
	ErrStackCheckConflict = errors.New("evm: conflicting stack heights at join")
	// ErrStackCheckOverflow reports exceeding the 1024-item limit.
	ErrStackCheckOverflow = errors.New("evm: static stack overflow")
)

// ValidateStackDepth abstractly interprets the program over the CFG,
// tracking the stack height at every block entry. It proves the generated
// code can never underflow and that every join is height-consistent -- the
// stack discipline the in-repo compilers promise. Blocks reachable only
// through computed jumps are not checked (their entry height is unknown).
func (p *Program) ValidateStackDepth() error {
	g := p.CFG()
	if len(g.Blocks) == 0 {
		return nil
	}
	entry := make([]int, len(g.Blocks))
	for i := range entry {
		entry[i] = -1 // unknown
	}
	entry[0] = 0
	work := []int{0}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		h, err := p.blockExitHeight(g.Blocks[b], entry[b])
		if err != nil {
			return err
		}
		for _, s := range g.Succs[b] {
			switch entry[s] {
			case -1:
				entry[s] = h
				work = append(work, s)
			case h:
				// consistent; nothing to do
			default:
				return fmt.Errorf("%w: block at %#x entered with %d and %d",
					ErrStackCheckConflict, g.Blocks[s].Start, entry[s], h)
			}
		}
	}
	return nil
}

// blockExitHeight simulates one block's stack effects from the entry height.
func (p *Program) blockExitHeight(b BasicBlock, h int) (int, error) {
	for i := b.First; i <= b.Last; i++ {
		ins := p.Instructions[i]
		info := opTable[ins.Op]
		if !info.defined {
			return h, nil // execution faults here; nothing past it runs
		}
		if h < info.pops {
			return 0, fmt.Errorf("%w: %s at %#x needs %d, stack has %d",
				ErrStackCheckUnderflow, ins.Op, ins.PC, info.pops, h)
		}
		h = h - info.pops + info.pushes
		if h > maxStack {
			return 0, fmt.Errorf("%w: height %d at %#x", ErrStackCheckOverflow, h, ins.PC)
		}
	}
	return h, nil
}
