package evm

import (
	"fmt"
)

// Label is a forward-referenceable jump target inside an Assembler program.
type Label int

// Assembler builds EVM bytecode with symbolic labels. Jump targets are
// emitted as fixed-width PUSH2 immediates and patched when Assemble is
// called, so label addresses never change the layout.
type Assembler struct {
	code    []byte
	labels  []int   // label -> byte offset, -1 if unbound
	patches []patch // PUSH2 sites awaiting label addresses
	errs    []error
}

type patch struct {
	offset int // position of the 2 immediate bytes
	label  Label
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{}
}

// Len returns the current code size in bytes.
func (a *Assembler) Len() int { return len(a.code) }

// Op appends raw opcodes with no immediates.
func (a *Assembler) Op(ops ...Op) *Assembler {
	for _, op := range ops {
		a.code = append(a.code, byte(op))
	}
	return a
}

// Push appends the shortest PUSH for v.
func (a *Assembler) Push(v uint64) *Assembler {
	return a.PushWord(WordFromUint64(v))
}

// PushWord appends the shortest PUSH for w (PUSH1 0x00 for zero, to stay
// compatible with pre-Shanghai dialects that lack PUSH0).
func (a *Assembler) PushWord(w Word) *Assembler {
	full := w.Bytes32()
	i := 0
	for i < 32 && full[i] == 0 {
		i++
	}
	if i == 32 {
		i = 31 // zero still emits PUSH1 0x00
	}
	b := full[i:]
	op, err := PushOp(len(b))
	if err != nil {
		a.errs = append(a.errs, err)
		return a
	}
	a.code = append(a.code, byte(op))
	a.code = append(a.code, b...)
	return a
}

// PushBytes appends a PUSH with exactly the given immediate bytes (used for
// masks whose leading zeros are significant to pattern width).
func (a *Assembler) PushBytes(b []byte) *Assembler {
	op, err := PushOp(len(b))
	if err != nil {
		a.errs = append(a.errs, err)
		return a
	}
	a.code = append(a.code, byte(op))
	a.code = append(a.code, b...)
	return a
}

// Dup appends DUPn.
func (a *Assembler) Dup(n int) *Assembler {
	op, err := DupOp(n)
	if err != nil {
		a.errs = append(a.errs, err)
		return a
	}
	return a.Op(op)
}

// Swap appends SWAPn.
func (a *Assembler) Swap(n int) *Assembler {
	op, err := SwapOp(n)
	if err != nil {
		a.errs = append(a.errs, err)
		return a
	}
	return a.Op(op)
}

// NewLabel allocates an unbound label.
func (a *Assembler) NewLabel() Label {
	a.labels = append(a.labels, -1)
	return Label(len(a.labels) - 1)
}

// Bind places the label at the current position and emits a JUMPDEST.
func (a *Assembler) Bind(l Label) *Assembler {
	if int(l) >= len(a.labels) {
		a.errs = append(a.errs, fmt.Errorf("evm: bind of unknown label %d", l))
		return a
	}
	if a.labels[l] != -1 {
		a.errs = append(a.errs, fmt.Errorf("evm: label %d bound twice", l))
		return a
	}
	a.labels[l] = len(a.code)
	return a.Op(JUMPDEST)
}

// PushLabel emits a PUSH2 whose immediate will be the label's address.
func (a *Assembler) PushLabel(l Label) *Assembler {
	a.code = append(a.code, byte(PUSH2))
	a.patches = append(a.patches, patch{offset: len(a.code), label: l})
	a.code = append(a.code, 0, 0)
	return a
}

// Jump emits an unconditional jump to the label.
func (a *Assembler) Jump(l Label) *Assembler {
	return a.PushLabel(l).Op(JUMP)
}

// JumpI emits a conditional jump to the label (consumes the condition on the
// stack below the pushed target).
func (a *Assembler) JumpI(l Label) *Assembler {
	return a.PushLabel(l).Op(JUMPI)
}

// Assemble resolves labels and returns the final bytecode.
func (a *Assembler) Assemble() ([]byte, error) {
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	out := make([]byte, len(a.code))
	copy(out, a.code)
	for _, p := range a.patches {
		addr := a.labels[p.label]
		if addr == -1 {
			return nil, fmt.Errorf("evm: label %d never bound", p.label)
		}
		if addr > 0xffff {
			return nil, fmt.Errorf("evm: label address %#x exceeds PUSH2 range", addr)
		}
		out[p.offset] = byte(addr >> 8)
		out[p.offset+1] = byte(addr)
	}
	return out, nil
}
