package evm

import "testing"

// assembleForwarder builds a labeled-jump DELEGATECALL facade targeting
// the given word (deliberately not an EIP-1167 byte layout).
func assembleForwarder(t *testing.T, target Word) []byte {
	t.Helper()
	a := NewAssembler()
	ok := a.NewLabel()
	a.Op(CALLDATASIZE).Push(0).Push(0).Op(CALLDATACOPY)
	a.Push(0).Push(0).Op(CALLDATASIZE).Push(0)
	a.PushWord(target).Op(GAS).Op(DELEGATECALL)
	a.Op(RETURNDATASIZE).Push(0).Push(0).Op(RETURNDATACOPY)
	a.JumpI(ok)
	a.Op(RETURNDATASIZE).Push(0).Op(REVERT)
	a.Bind(ok)
	a.Op(RETURNDATASIZE).Push(0).Op(RETURN)
	code, err := a.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return code
}

func TestDelegateTargetForwarder(t *testing.T) {
	addr := make([]byte, 20)
	for i := range addr {
		addr[i] = byte(0xa0 + i)
	}
	want := WordFromBytes(addr)
	got, found := DelegateTarget(assembleForwarder(t, want), 0)
	if !found {
		t.Fatal("probe missed the DELEGATECALL")
	}
	if got != want {
		t.Fatalf("target %s, want %s", got.Hex(), want.Hex())
	}
}

// The probe must mask the pushed word to address width: forwarders that
// carry dirty high bits in the target slot still resolve to an address.
func TestDelegateTargetMasksAddress(t *testing.T) {
	addr := WordFromUint64(0x1234_5678)
	dirty := addr.Or(OneWord.Shl(WordFromUint64(200)))
	got, found := DelegateTarget(assembleForwarder(t, dirty), 0)
	if !found {
		t.Fatal("probe missed the DELEGATECALL")
	}
	if got != addr {
		t.Fatalf("target %s not masked to address width (want %s)", got.Hex(), addr.Hex())
	}
}

func TestDelegateTargetNegative(t *testing.T) {
	// A contract that returns immediately never delegates.
	plain := NewAssembler().Push(0).Push(0).Op(RETURN)
	code, err := plain.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if _, found := DelegateTarget(code, 0); found {
		t.Fatal("probe invented a delegate target")
	}
	if _, found := DelegateTarget(nil, 0); found {
		t.Fatal("probe found a target in empty code")
	}
	// An infinite loop must be cut off by the step limit, not hang.
	a := NewAssembler()
	top := a.NewLabel()
	a.Bind(top)
	a.Jump(top)
	loop, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if _, found := DelegateTarget(loop, 256); found {
		t.Fatal("probe found a target in a busy loop")
	}
}
