// Package sigrec recovers function signatures from Ethereum smart-contract
// runtime bytecode, implementing the SigRec system: function ids are
// extracted from the dispatcher, and parameter types are inferred with
// type-aware symbolic execution (TASE) over the EVM instruction patterns
// that access the call data -- no source code and no signature database.
//
// Quick start:
//
//	sigs, err := sigrec.Recover(bytecode)
//	for _, f := range sigs.Functions {
//	    fmt.Println(f.Selector, f.TypeList())
//	}
//
// The internal packages provide the full substrate: an EVM disassembler and
// interpreter, an ABI codec, miniature Solidity/Vyper compilers used for
// evaluation, the ParChecker call-data validator, fuzzing, and the Erays+
// reverse-engineering enhancer. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced evaluation.
package sigrec

import (
	"encoding/hex"
	"fmt"
	"strings"

	"sigrec/internal/abi"
	"sigrec/internal/core"
	"sigrec/internal/evm"
)

// Function is one recovered public/external function.
type Function = core.RecoveredFunction

// Result is the recovery output for one contract.
type Result = core.Result

// RuleStats counts inference-rule applications (R1-R31).
type RuleStats = core.RuleStats

// Selector is a 4-byte function id.
type Selector = abi.Selector

// Recover runs SigRec on runtime bytecode.
func Recover(code []byte) (Result, error) {
	return core.Recover(code)
}

// RecoverHex runs SigRec on 0x-prefixed or bare hex bytecode.
func RecoverHex(hexCode string) (Result, error) {
	s := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(hexCode), "0x"))
	code, err := hex.DecodeString(s)
	if err != nil {
		return Result{}, fmt.Errorf("sigrec: decode hex: %w", err)
	}
	return Recover(code)
}

// RecoverFunction recovers a single function by its known id.
func RecoverFunction(code []byte, selector Selector) (Function, RuleStats) {
	return core.RecoverFunction(code, selector)
}

// RecoverDeployment accepts deployment bytecode (constructor/init code),
// executes it to extract the runtime bytecode, and recovers that. Use this
// when the input is a contract-creation transaction's payload rather than
// the deployed code.
func RecoverDeployment(deployCode []byte) (Result, error) {
	runtime, err := evm.ExtractRuntime(deployCode)
	if err != nil {
		return Result{}, fmt.Errorf("sigrec: %w", err)
	}
	return core.Recover(runtime)
}

// ParseSignature parses "name(type1,type2,...)" into the ABI representation
// (useful for computing ids of known signatures).
func ParseSignature(s string) (abi.Signature, error) {
	return abi.ParseSignature(s)
}
