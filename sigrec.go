// Package sigrec recovers function signatures from Ethereum smart-contract
// runtime bytecode, implementing the SigRec system: function ids are
// extracted from the dispatcher, and parameter types are inferred with
// type-aware symbolic execution (TASE) over the EVM instruction patterns
// that access the call data -- no source code and no signature database.
//
// Quick start:
//
//	sigs, err := sigrec.Recover(bytecode)
//	for _, f := range sigs.Functions {
//	    fmt.Println(f.Selector, f.TypeList())
//	}
//
// The internal packages provide the full substrate: an EVM disassembler and
// interpreter, an ABI codec, miniature Solidity/Vyper compilers used for
// evaluation, the ParChecker call-data validator, fuzzing, and the Erays+
// reverse-engineering enhancer. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced evaluation.
package sigrec

import (
	"context"
	"fmt"
	"io"

	"sigrec/internal/abi"
	"sigrec/internal/core"
	"sigrec/internal/evm"
	"sigrec/internal/telemetry"
)

// Function is one recovered public/external function.
type Function = core.RecoveredFunction

// Result is the recovery output for one contract.
type Result = core.Result

// RuleStats counts inference-rule applications (R1-R31).
type RuleStats = core.RuleStats

// Selector is a 4-byte function id.
type Selector = abi.Selector

// Options bounds and instruments a recovery: TASE step budget, explored-
// path cap, per-contract wall-clock deadline, an optional shared result
// cache, and the DisableInterning escape hatch for the hash-consed
// expression engine. The zero value selects the built-in budgets with
// interning on.
type Options = core.Options

// Cache is a size-bounded LRU of recovery results keyed by keccak256 of
// the bytecode, safe for concurrent use. Share one across RecoverContext
// and RecoverAllContext calls to dedupe repeated bytecode (deployed
// contracts are massively duplicated on-chain).
type Cache = core.Cache

// NewCache returns a Cache bounded to maxEntries results.
func NewCache(maxEntries int) *Cache { return core.NewCache(maxEntries) }

// BatchItem is one contract's outcome in a batch recovery.
type BatchItem = core.BatchItem

// MetricsSnapshot is a point-in-time copy of the pipeline telemetry:
// counters (recoveries, truncations, TASE paths/steps/events, cache
// hits/misses), gauges, and the E3-bucket recovery-latency histogram.
type MetricsSnapshot = telemetry.Snapshot

// Recover runs SigRec on runtime bytecode.
func Recover(code []byte) (Result, error) {
	return core.Recover(code)
}

// RecoverContext runs SigRec under resource bounds: budgets and deadline
// from opts, plus cancellation/deadline from ctx. A hit bound returns a
// partial Result with Truncated set rather than an error.
func RecoverContext(ctx context.Context, code []byte, opts Options) (Result, error) {
	return core.RecoverContext(ctx, code, opts)
}

// RecoverAll recovers many contracts concurrently with a bounded worker
// pool (workers <= 0 selects GOMAXPROCS), applying opts to every item.
// Results come back in input order with per-item errors and truncation.
func RecoverAll(ctx context.Context, codes [][]byte, workers int, opts Options) []BatchItem {
	return core.RecoverAllContext(ctx, codes, workers, opts)
}

// Metrics returns a snapshot of the pipeline telemetry. Counters are
// cumulative for the process; diff two snapshots to meter a single run.
func Metrics() MetricsSnapshot {
	return core.Metrics().Snapshot()
}

// WriteMetrics writes the telemetry exposition (a Prometheus-flavoured
// text format) to w.
func WriteMetrics(w io.Writer) error {
	_, err := core.Metrics().Snapshot().WriteTo(w)
	return err
}

// HexInputError is the typed error DecodeHex (and so RecoverHex and the
// sigrecd serving layer) returns for malformed hex bytecode: odd-length
// input or a non-hex character. Match it with errors.As to distinguish
// bad input from recovery failures.
type HexInputError = core.HexInputError

// DecodeHex decodes contract bytecode from hex, tolerating an optional
// 0x/0X prefix and surrounding whitespace. Malformed input yields a
// *HexInputError rather than a generic error.
func DecodeHex(s string) ([]byte, error) {
	return core.DecodeHex(s)
}

// RecoverHex runs SigRec on 0x-prefixed or bare hex bytecode.
func RecoverHex(hexCode string) (Result, error) {
	code, err := DecodeHex(hexCode)
	if err != nil {
		return Result{}, fmt.Errorf("sigrec: decode hex: %w", err)
	}
	return Recover(code)
}

// RecoverFunction recovers a single function by its known id.
func RecoverFunction(code []byte, selector Selector) (Function, RuleStats) {
	return core.RecoverFunction(code, selector)
}

// RecoverDeployment accepts deployment bytecode (constructor/init code),
// executes it to extract the runtime bytecode, and recovers that. Use this
// when the input is a contract-creation transaction's payload rather than
// the deployed code.
func RecoverDeployment(deployCode []byte) (Result, error) {
	return RecoverDeploymentContext(context.Background(), deployCode, Options{})
}

// RecoverDeploymentContext is RecoverDeployment under resource bounds.
func RecoverDeploymentContext(ctx context.Context, deployCode []byte, opts Options) (Result, error) {
	runtime, err := evm.ExtractRuntime(deployCode)
	if err != nil {
		return Result{}, fmt.Errorf("sigrec: %w", err)
	}
	return core.RecoverContext(ctx, runtime, opts)
}

// ParseSignature parses "name(type1,type2,...)" into the ABI representation
// (useful for computing ids of known signatures).
func ParseSignature(s string) (abi.Signature, error) {
	return abi.ParseSignature(s)
}
