// Benchmarks regenerating every table and figure of the paper's evaluation
// (one bench per experiment, E1-E13), plus microbenchmarks of the recovery
// pipeline itself. Run with:
//
//	go test -bench=. -benchmem
package sigrec

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"sigrec/internal/abi"
	"sigrec/internal/core"
	"sigrec/internal/corpus"
	"sigrec/internal/eventlog"
	"sigrec/internal/evm"
	"sigrec/internal/experiments"
	"sigrec/internal/obfuscate"
	"sigrec/internal/obs"
	"sigrec/internal/otlp"
	"sigrec/internal/solc"
	"sigrec/internal/store"
	"sigrec/internal/telemetry"
)

// benchParams keeps bench iterations affordable while preserving every
// experiment's shape; cmd/experiments runs the full scale.
var benchParams = experiments.Params{Seed: 42, Scale: 0.05}

func benchExperiment(b *testing.B, id string) {
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := r.Run(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// One benchmark per paper table/figure.

func BenchmarkE1Accuracy(b *testing.B)         { benchExperiment(b, "e1") }  // §5.2 RQ1
func BenchmarkE2CompilerVersions(b *testing.B) { benchExperiment(b, "e2") }  // Fig. 15/16
func BenchmarkE3TimeDistribution(b *testing.B) { benchExperiment(b, "e3") }  // Fig. 17
func BenchmarkE4DimensionSweep(b *testing.B)   { benchExperiment(b, "e4") }  // Fig. 18
func BenchmarkE5RuleUsage(b *testing.B)        { benchExperiment(b, "e5") }  // Fig. 19
func BenchmarkE6Dataset1(b *testing.B)         { benchExperiment(b, "e6") }  // Table 1
func BenchmarkE7Dataset2(b *testing.B)         { benchExperiment(b, "e7") }  // Table 2
func BenchmarkE8Dataset3(b *testing.B)         { benchExperiment(b, "e8") }  // Table 3
func BenchmarkE9StructNested(b *testing.B)     { benchExperiment(b, "e9") }  // Table 4
func BenchmarkE10Vyper(b *testing.B)           { benchExperiment(b, "e10") } // Table 5
func BenchmarkE11ParChecker(b *testing.B)      { benchExperiment(b, "e11") } // §6.1/Table 6
func BenchmarkE12Fuzzing(b *testing.B)         { benchExperiment(b, "e12") } // §6.2
func BenchmarkE13Erays(b *testing.B)           { benchExperiment(b, "e13") } // §6.3
func BenchmarkE14Obfuscation(b *testing.B)     { benchExperiment(b, "e14") } // §7 ablation

// Microbenchmarks of the pipeline.

func benchRecover(b *testing.B, sigStr string, mode solc.Mode) {
	sig, err := abi.ParseSignature(sigStr)
	if err != nil {
		b.Fatal(err)
	}
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{{Sig: sig, Mode: mode}}},
		solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, _ := core.RecoverFunction(code, sig.Selector())
		if len(rec.Inputs) == 0 {
			b.Fatal("recovery failed")
		}
	}
}

func BenchmarkRecoverBasic(b *testing.B) {
	benchRecover(b, "transfer(address,uint256)", solc.External)
}

func BenchmarkRecoverDynamicArray(b *testing.B) {
	benchRecover(b, "batch(uint256[],address)", solc.External)
}

func BenchmarkRecoverNestedArray(b *testing.B) {
	benchRecover(b, "deep(uint8[][])", solc.External)
}

func BenchmarkRecoverPublicCopy(b *testing.B) {
	benchRecover(b, "rows(uint256[3][2],bytes)", solc.Public)
}

func BenchmarkBatchRecovery(b *testing.B) {
	c, err := corpus.Generate(corpus.Config{Seed: 9, Solidity: 64, Vyper: 0})
	if err != nil {
		b.Fatal(err)
	}
	codes := make([][]byte, len(c.Entries))
	for i, e := range c.Entries {
		codes[i] = e.Code
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := core.RecoverAll(codes, 0)
		if len(items) != len(codes) {
			b.Fatal("batch incomplete")
		}
	}
}

// BenchmarkBatchRecoveryCached is BenchmarkBatchRecovery over a corpus
// where every contract appears multiple times, batched through a shared
// result cache — the fleet-scan shape (deployed bytecode is massively
// duplicated on-chain, so the cache absorbs most of the TASE work).
func BenchmarkBatchRecoveryCached(b *testing.B) {
	c, err := corpus.Generate(corpus.Config{Seed: 9, Solidity: 16, Vyper: 0})
	if err != nil {
		b.Fatal(err)
	}
	var codes [][]byte
	for rep := 0; rep < 8; rep++ {
		for _, e := range c.Entries {
			codes = append(codes, e.Code)
		}
	}
	cache := core.NewCache(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := core.RecoverAllContext(context.Background(), codes, 0, core.Options{Cache: cache})
		if len(items) != len(codes) {
			b.Fatal("batch incomplete")
		}
	}
}

// BenchmarkRecoverInterningOff is the A/B control for the hash-consed
// engine: the same batch as BenchmarkBatchRecovery with interning
// disabled, quantifying what the interner and copy-on-write state buy.
func BenchmarkRecoverInterningOff(b *testing.B) {
	c, err := corpus.Generate(corpus.Config{Seed: 9, Solidity: 64, Vyper: 0})
	if err != nil {
		b.Fatal(err)
	}
	codes := make([][]byte, len(c.Entries))
	for i, e := range c.Entries {
		codes[i] = e.Code
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := core.RecoverAllContext(context.Background(), codes, 0,
			core.Options{DisableInterning: true})
		if len(items) != len(codes) {
			b.Fatal("batch incomplete")
		}
	}
}

// benchE3Tracing runs the E3-shaped workload (recover a corpus of
// contracts end to end) through core.RecoverContext with and without a
// tracer armed. The pair is the tracing-overhead A/B that `make
// bench-gate` holds within 5% ns/op: Off exercises the nil-tracer fast
// path, On records a full span tree per recovery into a flight recorder.
func benchE3Tracing(b *testing.B, tracer *obs.Tracer) {
	c, err := corpus.Generate(corpus.Config{Seed: 7, Solidity: 32, Vyper: 0})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range c.Entries {
			ctx, rec := tracer.StartRecovery(context.Background(), "bench")
			res, err := core.RecoverContext(ctx, e.Code, core.Options{})
			rec.Finish(res.Truncated, err)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE3TracingOff(b *testing.B) { benchE3Tracing(b, nil) }
func BenchmarkE3TracingOn(b *testing.B)  { benchE3Tracing(b, obs.New(obs.Config{})) }

// benchE3OTLP is the OTLP-export A/B on the same E3-shaped workload. Off
// arms a tracer with the flight recorder only; On adds the exporter sink,
// so every finished recovery is offered for export. The timed section
// models the stalled-collector worst case — the exporter is not draining,
// so the sink's non-blocking send fills the bounded queue and then drops
// — because that is the contract the gate defends: whatever the collector
// does, the recovery path pays one channel operation, nothing more.
// Batching, JSON encoding, and HTTP belong on the exporter's goroutine;
// any of that work leaking into Enqueue (say, a synchronous encode) trips
// the 10% allocs/op ratio immediately. The full encode-and-POST path
// still runs — against a live in-process collector — but after
// StopTimer, as the drain-everything flush that Close performs over the
// retained records.
func benchE3OTLP(b *testing.B, otlpOn bool) {
	c, err := corpus.Generate(corpus.Config{Seed: 7, Solidity: 32, Vyper: 0})
	if err != nil {
		b.Fatal(err)
	}
	var sink func(*obs.Record)
	var flush func()
	if otlpOn {
		col := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = io.Copy(io.Discard, r.Body)
		}))
		defer col.Close()
		// A small bounded queue keeps the retained live set constant
		// (records beyond it drop, as against a stalled collector), so the
		// timed loop measures the enqueue instruction, not GC pressure
		// from an ever-growing backlog.
		exp := otlp.New(otlp.Config{
			Endpoint:    col.URL,
			Interval:    time.Hour,
			QueueSize:   512,
			ServiceName: "bench",
			Registry:    telemetry.NewRegistry(),
		})
		sink = exp.Sink()
		flush = func() {
			exp.Start()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := exp.Close(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	tracer := obs.New(obs.Config{Sink: sink})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range c.Entries {
			ctx, rec := tracer.StartRecovery(context.Background(), "bench")
			res, err := core.RecoverContext(ctx, e.Code, core.Options{})
			rec.Finish(res.Truncated, err)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if flush != nil {
		flush()
	}
}

func BenchmarkE3OTLPOff(b *testing.B) { benchE3OTLP(b, false) }
func BenchmarkE3OTLPOn(b *testing.B)  { benchE3OTLP(b, true) }

// benchE3Events is the event-log counterpart of benchE3Tracing: the same
// E3-shaped workload with and without a wide-event writer armed. `make
// bench-gate` holds On within 3% ns/op of Off — the per-recovery cost of
// building one Event and handing it to the async writer must stay in the
// noise (phase clocks run on both sides, so only the event allocation and
// channel send differ).
func benchE3Events(b *testing.B, log *eventlog.Writer) {
	c, err := corpus.Generate(corpus.Config{Seed: 7, Solidity: 32, Vyper: 0})
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{EventLog: log}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range c.Entries {
			ctx, _ := eventlog.NewContext(context.Background(), "bench")
			res, err := core.RecoverContext(ctx, e.Code, opts)
			if err != nil {
				b.Fatal(err)
			}
			_ = res
		}
	}
}

func BenchmarkE3EventsOff(b *testing.B) { benchE3Events(b, nil) }

func BenchmarkE3EventsOn(b *testing.B) {
	w, err := eventlog.New(eventlog.Config{Path: filepath.Join(b.TempDir(), "events.ndjson")})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	benchE3Events(b, w)
}

// benchE3Parallel recovers a set of 10-function contracts end to end with
// a fixed selector-worker count. Off (workers=1) is the sequential
// baseline; On (workers=0, auto up to GOMAXPROCS) fans the per-selector
// TASE runs out across the pool. `make bench-gate` requires On to be at
// least 2x faster than Off on machines with >=4 cores; on fewer cores the
// pair still records the (absent) overhead of the pool itself.
func benchE3Parallel(b *testing.B, workers int) {
	synth, err := corpus.GenerateSynthesized(7)
	if err != nil {
		b.Fatal(err)
	}
	// Entries repeat each contract's code once per function; keep the
	// first 8 distinct 10-function contracts.
	seen := make(map[string]bool)
	var codes [][]byte
	for _, e := range synth {
		k := string(e.Code)
		if !seen[k] {
			seen[k] = true
			codes = append(codes, e.Code)
			if len(seen) == 8 {
				break
			}
		}
	}
	opts := core.Options{SelectorWorkers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, code := range codes {
			res, err := core.RecoverContext(context.Background(), code, opts)
			if err != nil || len(res.Functions) == 0 {
				b.Fatal("recovery failed")
			}
		}
	}
}

func BenchmarkE3ParallelOff(b *testing.B) { benchE3Parallel(b, 1) }
func BenchmarkE3ParallelOn(b *testing.B)  { benchE3Parallel(b, 0) }

// BenchmarkTieredCacheWarmLookup measures the disk tier of the warm-start
// path: a store populated with recovery results is consulted through a
// TieredCache whose memory LRU is kept too small to absorb the key set,
// so nearly every lookup is a disk hit (index probe + pread + decode) —
// the post-restart steady state. `make bench-gate` holds this under
// 50µs/op.
func BenchmarkTieredCacheWarmLookup(b *testing.B) {
	c, err := corpus.Generate(corpus.Config{Seed: 11, Solidity: 64, Vyper: 0})
	if err != nil {
		b.Fatal(err)
	}
	disk, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer disk.Close()
	warm := core.NewTieredCache(len(c.Entries)*2, disk)
	codes := make([][]byte, len(c.Entries))
	for i, e := range c.Entries {
		codes[i] = e.Code
		if _, err := warm.GetOrCompute(e.Code, func() (core.Result, error) {
			return core.RecoverContext(context.Background(), e.Code, core.Options{})
		}); err != nil {
			b.Fatal(err)
		}
	}
	// Restart: fresh memory tier, bounded to a single entry so successive
	// lookups cannot be served from the LRU.
	restarted := core.NewTieredCache(1, disk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code := codes[i%len(codes)]
		if _, err := restarted.GetOrCompute(code, func() (core.Result, error) {
			b.Fatal("warm lookup fell through to compute")
			return core.Result{}, nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoverBounded measures the overhead of running a recovery
// with an (unreached) deadline and step budget armed — the bounds checks
// themselves, which must stay in the noise.
func BenchmarkRecoverBounded(b *testing.B) {
	sig, _ := abi.ParseSignature("transfer(address,uint256)")
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{{Sig: sig, Mode: solc.External}}},
		solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Deadline: time.Minute, StepBudget: 1 << 30}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RecoverContext(context.Background(), code, opts)
		if err != nil || len(res.Functions) == 0 {
			b.Fatal("recovery failed")
		}
	}
}

func BenchmarkObfuscateAndRecover(b *testing.B) {
	sig, _ := abi.ParseSignature("f(uint8,uint32,address)")
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{{Sig: sig, Mode: solc.External}}},
		solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obf, err := obfuscate.Obfuscate(code, obfuscate.LevelShiftMask, 1)
		if err != nil {
			b.Fatal(err)
		}
		rec, _ := core.RecoverFunction(obf, sig.Selector())
		if len(rec.Inputs) != 3 {
			b.Fatal("recovery degraded")
		}
	}
}

func BenchmarkWorldCall(b *testing.B) {
	sig, _ := abi.ParseSignature("transfer(address,uint256)")
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{{Sig: sig, Mode: solc.External}}},
		solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		b.Fatal(err)
	}
	w := evm.NewWorld()
	target := evm.WordFromUint64(0x1001)
	w.Deploy(target, code)
	data, _ := abi.EncodeCall(sig, []abi.Value{evm.WordFromUint64(1), evm.WordFromUint64(2)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := w.Call(evm.WordFromUint64(0xCAFE), target, data, evm.ZeroWord, 0)
		if err != nil || res.Reverted {
			b.Fatal("call failed")
		}
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := corpus.Generate(corpus.Config{Seed: int64(i), Solidity: 50, Vyper: 10})
		if err != nil {
			b.Fatal(err)
		}
		if len(c.Entries) == 0 {
			b.Fatal("empty corpus")
		}
	}
}
