#!/bin/sh
# pgo.sh — capture a CPU profile of sigrecd under the recovery workload
# and install it as default.pgo for profile-guided builds.
#
# The profile is taken the way production would take it: a real sigrecd
# process serving the corpus through /v1/recover/batch while its pprof
# debug endpoint records CPU samples. The daemon runs with a deliberately
# tiny LRU and no disk store so every batch round actually recomputes —
# the profile weights the TASE/inference hot path, not cache hits.
#
#   make pgo                 # capture + rebuild (default 20s window)
#   PGO_SECONDS=60 make pgo  # longer capture
#
# The resulting default.pgo at the repo root is committed; `go build`
# does not pick it up automatically for cmd/* main packages (auto mode
# looks in the main package directory), so the Makefile build targets and
# scripts pass -pgo=default.pgo explicitly where it matters.
set -eu

cd "$(dirname "$0")/.."

PGO_SECONDS=${PGO_SECONDS:-20}
PGO_OUT=${PGO_OUT:-default.pgo}
ADDR=${PGO_ADDR:-127.0.0.1:8461}
DEBUG_ADDR=${PGO_DEBUG_ADDR:-127.0.0.1:8462}

tmp=$(mktemp -d)
srv=""
cleanup() {
    [ -n "$srv" ] && kill "$srv" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "pgo: building sigrecd and generating the replay corpus"
go build -o "$tmp/sigrecd" ./cmd/sigrecd
go run ./cmd/corpusgen -solidity 120 -vyper 12 >"$tmp/corpus.json"
# One hex bytecode per line is exactly the /v1/recover/batch NDJSON body.
grep -o '"bytecode": "[^"]*"' "$tmp/corpus.json" | cut -d'"' -f4 >"$tmp/replay.ndjson"

"$tmp/sigrecd" -addr "$ADDR" -debug-addr "$DEBUG_ADDR" -cache 8 \
    -log-level warn >"$tmp/sigrecd.log" 2>&1 &
srv=$!

i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "pgo: sigrecd did not become healthy" >&2; exit 1; }
    sleep 0.1
done

echo "pgo: profiling $PGO_SECONDS s of batch recovery load"
curl -fsS "http://$DEBUG_ADDR/debug/pprof/profile?seconds=$PGO_SECONDS" \
    -o "$tmp/cpu.prof" &
prof=$!

end=$(($(date +%s) + PGO_SECONDS))
rounds=0
while [ "$(date +%s)" -lt "$end" ]; do
    curl -fsS -X POST -H 'Content-Type: application/x-ndjson' \
        --data-binary @"$tmp/replay.ndjson" \
        "http://$ADDR/v1/recover/batch" >/dev/null
    rounds=$((rounds + 1))
done
wait "$prof"
echo "pgo: replayed $rounds batch rounds"

kill "$srv" 2>/dev/null || true
wait "$srv" 2>/dev/null || true
srv=""

mv "$tmp/cpu.prof" "$PGO_OUT"
echo "pgo: wrote $PGO_OUT ($(wc -c <"$PGO_OUT") bytes)"

echo "pgo: rebuilding daemons with -pgo=$PGO_OUT"
go build -pgo="$PGO_OUT" ./cmd/sigrecd ./cmd/sigrec ./cmd/sigrec-router
rm -f sigrecd sigrec sigrec-router
echo "pgo: done — commit $PGO_OUT; 'make bench PGOFLAG=-pgo=$PGO_OUT' measures the effect"
