// Command corpusgen emits a labeled contract corpus as JSON: declared
// signatures, compiled runtime bytecode, and generation metadata. Useful
// for feeding external tools or inspecting the evaluation inputs.
//
// Usage:
//
//	corpusgen -solidity 100 -vyper 20 -seed 7 > corpus.json
//	corpusgen -synthesized > dataset2.json
package main

import (
	"flag"
	"fmt"
	"os"

	"sigrec/internal/corpus"
	"sigrec/internal/efsd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		nSol    = flag.Int("solidity", 200, "number of Solidity functions")
		nVy     = flag.Int("vyper", 20, "number of Vyper functions")
		seed    = flag.Int64("seed", 42, "generator seed")
		synth   = flag.Bool("synthesized", false, "emit the paper's dataset 2 (1,000 synthesized functions)")
		ambRate = flag.Float64("ambiguity", 0.035, "clue-dropping probability")
		efsdOut = flag.String("efsd", "", "also write a signature database (for sigrec -db)")
	)
	flag.Parse()

	var entries []corpus.Entry
	if *synth {
		var err error
		entries, err = corpus.GenerateSynthesized(*seed)
		if err != nil {
			return err
		}
	} else {
		cfg := corpus.DefaultConfig(*seed)
		cfg.Solidity, cfg.Vyper, cfg.AmbiguityRate = *nSol, *nVy, *ambRate
		c, err := corpus.Generate(cfg)
		if err != nil {
			return err
		}
		entries = c.Entries
	}

	if *efsdOut != "" {
		db := efsd.New()
		for _, e := range entries {
			db.Add(e.Sig)
		}
		f, err := os.Create(*efsdOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := db.Save(f); err != nil {
			return err
		}
	}

	return corpus.WriteJSON(os.Stdout, entries)
}
