// Command sigrec-router is the stateless front door of a sigrecd cluster:
// it routes each recovery to the shard that owns the bytecode's keccak on
// a consistent-hash ring, and papers over slow and dead shards.
//
// Usage:
//
//	sigrec-router -addr :8400 -shards s1=http://h1:8409,s2=http://h2:8409,s3=http://h3:8409
//
// Endpoints:
//
//	POST /v1/recover        routed single recovery (same wire schema as sigrecd)
//	POST /v1/recover/batch  NDJSON batch; each line routed independently
//	GET  /metrics           router + per-shard series
//	GET  /healthz           pool state; 503 when no shard is healthy
//	GET  /debug/trace/{id}  stitched cross-process trace: router spans plus
//	                        every shard's, fanned out and merged
//	GET  /debug/slowest     the router's own flight recorder
//
// Routing policy, in order:
//
//   - Placement: the ring owner of keccak(bytecode), diverted to the ring
//     successor when the owner is past the bounded-load limit
//     (-load-factor times the mean inflight).
//   - Circuit breaking: a shard that fails -breaker-failures times in a
//     row is skipped for -breaker-cooldown, then probed with one request.
//   - Hedging (-hedge): when the owner has not answered within its own
//     scraped p95 latency (times -hedge-mult, clamped to [-hedge-min,
//     -hedge-max]), the request is also sent to the next shard and the
//     first answer wins.
//   - Retry: transport errors and 502/503/504 move the request to the
//     ring successor; 429 retries without a breaker strike; other
//     statuses are relayed as-is (a deterministic failure will not
//     improve on another shard).
//
// The router holds no recovery state: kill it and start another and
// nothing is lost. Every forwarded attempt carries a globally unique
// X-Request-Id (the client's id plus an attempt counter) so shard event
// logs join exactly to client requests even across retries and hedges.
//
// Tracing: an inbound W3C traceparent is adopted (malformed ones start a
// fresh root, counted in sigrec_trace_context_total), the route decision
// and every attempt become spans in the router's flight recorder, and each
// forwarded attempt carries a traceparent whose parent span id is derived
// from the attempt's X-Request-Id — so shard recovery trees nest under the
// exact attempt that caused them, with no id exchange beyond the headers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sigrec/internal/cluster"
	"sigrec/internal/obs"
	"sigrec/internal/otlp"
	"sigrec/internal/server"
	"sigrec/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sigrec-router:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8400", "listen address")
		shardSpec  = flag.String("shards", "", "comma-separated shard pool as id=url (required)")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default; must match the shards' -vnodes)")
		timeout    = flag.Duration("timeout", cluster.DefaultTimeout, "end-to-end deadline per routed request, across retries and hedges")
		maxBody    = flag.Int64("maxbody", server.DefaultMaxBodyBytes, "max request-body bytes (and max batch line)")
		hedge      = flag.Bool("hedge", true, "hedge slow requests to the ring successor after the owner's p95-derived delay")
		hedgeMult  = flag.Float64("hedge-mult", cluster.DefaultHedgeMultiplier, "hedge delay = shard p95 x this multiplier")
		hedgeMin   = flag.Duration("hedge-min", cluster.DefaultHedgeMin, "lower clamp on the hedge delay")
		hedgeMax   = flag.Duration("hedge-max", cluster.DefaultHedgeMax, "upper clamp on the hedge delay (also used before the first p95 scrape)")
		brkFails   = flag.Int("breaker-failures", 3, "consecutive failures that open a shard's circuit breaker")
		brkCool    = flag.Duration("breaker-cooldown", time.Second, "how long an open breaker skips its shard before probing")
		healthIntv = flag.Duration("health-interval", cluster.DefaultHealthInterval, "shard health/p95 poll period")
		loadFactor = flag.Float64("load-factor", cluster.DefaultLoadFactor, "bounded-load factor: divert from an owner loaded past this multiple of the mean")
		batchConc  = flag.Int("batch-concurrency", 0, "max in-flight upstream calls per batch request (0 = 4 per shard)")
		slowest    = flag.Int("trace-slowest", obs.DefaultSlowest, "routed requests retained in the router's flight recorder (0 = tracing off)")
		otlpEP     = flag.String("otlp-endpoint", "", "OTLP/HTTP collector base URL; router metrics and span trees are exported there (empty = export off)")
		otlpIntv   = flag.Duration("otlp-interval", otlp.DefaultInterval, "OTLP flush cadence: one metrics snapshot per tick")
		svcName    = flag.String("service-name", "sigrec-router", "service.name resource attribute on every OTLP export")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString())
		return nil
	}
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}
	shards, err := parseShards(*shardSpec)
	if err != nil {
		flag.Usage()
		return err
	}

	// OTLP export ships the router's registry (routing counters, per-shard
	// health, latency summaries) and — through the tracer's sink — the span
	// tree recorded for every routed request: route decision, per-attempt
	// client spans, health polls. The exporter is created before the router
	// so both can share one registry and the tracer can point at its sink.
	reg := telemetry.NewRegistry()
	var exporter *otlp.Exporter
	if *otlpEP != "" {
		ver, _ := obs.Version()
		exporter = otlp.New(otlp.Config{
			Endpoint:    *otlpEP,
			Interval:    *otlpIntv,
			ServiceName: *svcName,
			Resource:    map[string]string{"service.version": ver},
			Registry:    reg,
			Logger:      logger,
		})
		exporter.Start()
	}
	var tracer *obs.Tracer
	if *slowest > 0 {
		tracer = obs.New(obs.Config{Slowest: *slowest, Sink: exporter.Sink()})
	}

	rt, err := cluster.NewRouter(cluster.Config{
		Shards:           shards,
		VNodes:           *vnodes,
		Timeout:          *timeout,
		MaxBodyBytes:     *maxBody,
		Hedge:            *hedge,
		HedgeMultiplier:  *hedgeMult,
		HedgeMin:         *hedgeMin,
		HedgeMax:         *hedgeMax,
		BreakerFailures:  *brkFails,
		BreakerCooldown:  *brkCool,
		HealthInterval:   *healthIntv,
		LoadFactor:       *loadFactor,
		BatchConcurrency: *batchConc,
		Registry:         reg,
		Tracer:           tracer,
		Logger:           logger,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	ver, goVer := obs.Version()
	logger.Info("sigrec-router listening",
		"addr", *addr,
		"shards", len(shards),
		"vnodes", *vnodes,
		"timeout", (*timeout).String(),
		"hedge", *hedge,
		"hedge_mult", *hedgeMult,
		"hedge_min", (*hedgeMin).String(),
		"hedge_max", (*hedgeMax).String(),
		"breaker_failures", *brkFails,
		"breaker_cooldown", (*brkCool).String(),
		"load_factor", *loadFactor,
		"tracing", tracer != nil,
		"otlp_endpoint", *otlpEP,
		"version", ver,
		"go_version", goVer,
	)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Info("sigrec-router shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	serr := hs.Shutdown(sctx)
	rt.Close()
	if exporter != nil {
		if err := exporter.Close(sctx); err != nil {
			logger.Warn("otlp exporter close timed out", "err", err)
		}
	}
	if errors.Is(serr, context.DeadlineExceeded) {
		return errors.New("shutdown deadline exceeded")
	}
	return serr
}

// parseShards parses -shards: "id1=http://host:port,id2=...".
func parseShards(spec string) ([]cluster.ShardAddr, error) {
	var shards []cluster.ShardAddr
	seen := map[string]bool{}
	for _, part := range splitComma(spec) {
		id, url, ok := cutEq(part)
		if !ok {
			return nil, fmt.Errorf("-shards entry %q is not id=url", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("-shards lists shard %q twice", id)
		}
		seen[id] = true
		shards = append(shards, cluster.ShardAddr{ID: id, URL: url})
	}
	if len(shards) == 0 {
		return nil, errors.New("-shards is required (id=url,...)")
	}
	return shards, nil
}
