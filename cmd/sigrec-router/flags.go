package main

import (
	"fmt"
	"log/slog"
	"os"
	"strings"
)

// splitComma splits a comma-separated flag value, trimming blanks.
func splitComma(spec string) []string {
	var out []string
	for _, part := range strings.Split(spec, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// cutEq splits one "id=url" entry, normalizing a trailing slash.
func cutEq(part string) (id, url string, ok bool) {
	id, url, ok = strings.Cut(part, "=")
	if !ok || id == "" || url == "" {
		return "", "", false
	}
	return id, strings.TrimSuffix(url, "/"), true
}

// buildLogger maps the -log-format/-log-level flags onto a slog.Logger
// writing to stderr (same flag surface as sigrecd).
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}
