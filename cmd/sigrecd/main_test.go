package main

import "testing"

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name       string
		workers    int
		queue      int
		maxBody    int64
		selWorkers int
		wantErr    bool
	}{
		{"defaults", 0, 64, 8 << 20, 1, false},
		{"explicit workers", 8, 1, 1, 1, false},
		{"negative workers", -1, 64, 8 << 20, 1, true},
		{"zero queue", 4, 0, 8 << 20, 1, true},
		{"negative queue", 4, -3, 8 << 20, 1, true},
		{"zero maxbody", 4, 64, 0, 1, true},
		{"negative maxbody", 4, 64, -1, 1, true},
		{"auto selector workers", 4, 64, 8 << 20, 0, false},
		{"explicit selector workers", 4, 64, 8 << 20, 4, false},
		{"negative selector workers", 4, 64, 8 << 20, -1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.workers, tc.queue, tc.maxBody, tc.selWorkers)
			if (err != nil) != tc.wantErr {
				t.Fatalf("validateFlags(%d, %d, %d, %d) = %v, wantErr %v",
					tc.workers, tc.queue, tc.maxBody, tc.selWorkers, err, tc.wantErr)
			}
		})
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("s1=http://a:1/, s2=http://b:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers["s1"] != "http://a:1" || peers["s2"] != "http://b:2" {
		t.Fatalf("peers = %v", peers)
	}

	if peers, err := parsePeers(""); err != nil || len(peers) != 0 {
		t.Fatalf("empty spec: peers=%v err=%v", peers, err)
	}

	for _, bad := range []string{"s1", "=http://a", "s1=", "s1=http://a,s1=http://b"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted malformed input", bad)
		}
	}
}
