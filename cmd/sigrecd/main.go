// Command sigrecd serves SigRec signature recovery over HTTP.
//
// Usage:
//
//	sigrecd -addr :8409 -workers 8 -queue 128 -timeout 2s -cache 65536
//
// Endpoints (see internal/server):
//
//	POST /v1/recover        hex bytecode -> JSON recovery
//	POST /v1/recover/batch  NDJSON in -> NDJSON out, streamed
//	GET  /metrics           Prometheus-flavoured exposition
//	GET  /healthz           liveness + pool state
//	GET  /debug/slowest     flight recorder: span trees of slow/truncated recoveries
//	GET  /debug/trace/{id}  stitched trace by request id or 32-hex trace id,
//	                        fanned out to -peers unless ?local=1
//	GET  /debug/events      tail of the wide-event log (requires -event-log)
//	GET  /debug/slo         burn-rate engine state: per-objective SLI, windows, alerts
//
// Recoveries run on a bounded worker pool behind a bounded admission
// queue: when the queue is full, single recovers are shed with 429 +
// Retry-After instead of queueing unboundedly. Identical concurrent
// bytecodes are coalesced into one recovery in front of the shared result
// cache. SIGTERM/SIGINT triggers graceful drain: stop accepting, finish
// inflight work, flush a final metrics snapshot to stderr, exit.
//
// Logs are structured (log/slog); every request line carries the
// request_id echoed on the response's X-Request-Id header, which also tags
// the recovery's span tree in the flight recorder and its wide event in
// the event log. -event-log makes every recovery durable: one NDJSON
// record per recovery (tail-sampled by -sample-rate; errors, truncations,
// and the slow tail always kept), rotated past -event-log-max-mb, replayed
// offline with sigrec-analyze. On drain the retained flight-recorder
// traces are dumped into the log before it is fsynced closed. -debug-addr
// starts a second listener with net/http/pprof, /debug/slowest,
// /debug/events, and /debug/slo, kept off the service port.
//
// -otlp-endpoint turns on OTLP/HTTP export: finished recovery span trees
// and periodic metrics snapshots are batched to <endpoint>/v1/traces and
// /v1/metrics with service.name, service.version, and sigrec.shard
// resource attributes. Export is fire-and-forget — a slow or absent
// collector costs dropped batches (counted in sigrec_otlp_dropped_total),
// never recovery latency. An SLO burn-rate engine always runs: request
// availability at 99.9% plus a 99%-under--slo-latency-threshold latency
// objective, alerting on the multi-window multi-burn-rate rules; alert
// transitions land in the event log as "slo_alert" records.
//
// Inbound requests may carry a W3C traceparent: a valid one is adopted so
// this shard's recovery tree nests under the caller's span (the router
// sends one per forwarded attempt), a malformed one starts a fresh root
// and never fails the request. Each disposition moves
// sigrec_trace_context_total{result="ok"|"absent"|"malformed"}.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sigrec"
	"sigrec/internal/cluster"
	"sigrec/internal/core"
	"sigrec/internal/efsd"
	"sigrec/internal/eventlog"
	"sigrec/internal/obs"
	"sigrec/internal/otlp"
	"sigrec/internal/server"
	"sigrec/internal/slo"
	"sigrec/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sigrecd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8409", "listen address")
		workers   = flag.Int("workers", 0, "concurrent recoveries (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", server.DefaultQueueDepth, "admission queue depth; beyond it requests are shed with 429")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-request recovery deadline (0 = unbounded)")
		budget    = flag.Int("budget", 0, "TASE step budget per exploration (0 = built-in default)")
		paths     = flag.Int("maxpaths", 0, "explored-path cap per exploration (0 = built-in default)")
		cache     = flag.Int("cache", server.DefaultCacheEntries, "result-cache entries (keccak-keyed LRU)")
		storeDir  = flag.String("store-dir", "", "directory for the persistent result store layered under the cache; warm results survive restarts (empty = memory-only)")
		selWork   = flag.Int("selector-workers", 1, "parallel selector explorations per contract (1 = sequential, 0 = auto up to GOMAXPROCS)")
		maxBody   = flag.Int64("maxbody", server.DefaultMaxBodyBytes, "max request-body bytes (and max batch line)")
		drain     = flag.Duration("drain", 15*time.Second, "graceful-drain deadline on SIGTERM/SIGINT")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		debugAddr = flag.String("debug-addr", "", "listen address for pprof + /debug/slowest (empty = disabled)")
		slowest   = flag.Int("trace-slowest", obs.DefaultSlowest, "recoveries retained in the flight recorder (0 = tracing off)")
		eventLog  = flag.String("event-log", "", "path for the durable wide-event log, one NDJSON record per recovery (empty = disabled)")
		eventMB   = flag.Int("event-log-max-mb", 64, "rotate the event log past this many MB per segment")
		sampleR   = flag.Float64("sample-rate", 1, "keep probability for fast, successful recoveries in the event log; errors, truncations, and the slow tail are always kept")
		otlpEP    = flag.String("otlp-endpoint", "", "OTLP/HTTP collector base URL, e.g. http://127.0.0.1:4318; spans and metrics are exported there (empty = export off)")
		otlpIntv  = flag.Duration("otlp-interval", otlp.DefaultInterval, "OTLP flush cadence: trace batches at least this often, one metrics snapshot per tick")
		svcName   = flag.String("service-name", "sigrecd", "service.name resource attribute on every OTLP export")
		sloLatUS  = flag.Duration("slo-latency-threshold", 100*time.Millisecond, "latency SLO: the duration 99% of recoveries must complete under (0 = latency objective off)")
		shardID   = flag.String("shard-id", "", "this shard's id on the cluster hash ring (enables peer cache fill when -peers is set)")
		peerSpec  = flag.String("peers", "", "comma-separated peer shards as id=url; on a local cache miss whose ring owner is a peer, its cache is consulted before computing")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per shard on the cluster hash ring (0 = default; must match the router)")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString())
		return nil
	}

	if err := validateFlags(*workers, *queue, *maxBody, *selWork); err != nil {
		return usageError(err)
	}
	peers, err := parsePeers(*peerSpec)
	if err != nil {
		return usageError(err)
	}
	if len(peers) > 0 && *shardID == "" {
		return usageError(errors.New("-peers requires -shard-id"))
	}
	if _, self := peers[*shardID]; self {
		return usageError(fmt.Errorf("-peers must not include this shard's own id %q", *shardID))
	}

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}
	// OTLP export: spans flow tracer -> exporter sink -> collector; metrics
	// are snapshotted from the shared registry each interval. The exporter
	// is created before the tracer so the tracer's sink can point at it.
	var exporter *otlp.Exporter
	if *otlpEP != "" {
		ver, _ := obs.Version()
		res := map[string]string{"service.version": ver}
		if *shardID != "" {
			res["sigrec.shard"] = *shardID
		}
		exporter = otlp.New(otlp.Config{
			Endpoint:    *otlpEP,
			Interval:    *otlpIntv,
			ServiceName: *svcName,
			Resource:    res,
			Registry:    core.Metrics(),
			Logger:      logger,
		})
	}
	var tracer *obs.Tracer
	if *slowest > 0 {
		// Span export rides on tracing: -trace-slowest 0 disables both the
		// flight recorder and OTLP trace export (metrics still flow).
		tracer = obs.New(obs.Config{Slowest: *slowest, Sink: exporter.Sink()})
	}
	var events *eventlog.Writer
	if *eventLog != "" {
		events, err = eventlog.New(eventlog.Config{
			Path:       *eventLog,
			MaxBytes:   int64(*eventMB) << 20,
			SampleRate: *sampleR,
			Registry:   core.Metrics(),
		})
		if err != nil {
			return err
		}
	}

	// Burn-rate engine: availability over the /v1/recover outcome counters
	// and (optionally) a latency objective over the recovery summary, both
	// already in the shared registry, evaluated on the SRE-workbook
	// multi-window rules. Alert transitions land in the event log; state is
	// served at /debug/slo on both listeners.
	reg := core.Metrics()
	objectives := []slo.Objective{{
		Name:   "availability",
		Target: 0.999,
		Source: slo.CounterSource{
			Total:  reg.Counter("sigrecd_recover_requests_total"),
			Errors: reg.Counter("sigrecd_recover_errors_total"),
		},
	}}
	if *sloLatUS > 0 {
		objectives = append(objectives, slo.Objective{
			Name:   fmt.Sprintf("latency_p99_%s", *sloLatUS),
			Target: 0.99,
			Source: slo.LatencySource{
				Summary:     reg.Summary("sigrec_recover_latency_microseconds", nil),
				ThresholdUS: float64(sloLatUS.Microseconds()),
			},
		})
	}
	sloEval := slo.New(slo.Config{
		Objectives: objectives,
		Registry:   reg,
		Events:     events,
	})

	// Persistent tier: with -store-dir the result cache is tiered — memory
	// LRU over an append-only disk store — so a restarted shard serves its
	// working set warm immediately, before any recompute or peer fill.
	var resultStore *store.Store
	var tiered *core.Cache
	if *storeDir != "" {
		resultStore, err = store.Open(*storeDir, store.Options{})
		if err != nil {
			return err
		}
		tiered = core.NewTieredCache(*cache, resultStore).Cache
	}

	// Cluster mode: with a shard id and peers, misses whose ring owner is
	// another shard first try that owner's cache (peer fill) before
	// computing locally, and this shard serves its own cache to peers.
	var fill core.FillFunc
	var ring *cluster.Ring
	if len(peers) > 0 {
		ring = cluster.NewRing(*vnodes)
		ring.Add(*shardID)
		for id := range peers {
			ring.Add(id)
		}
		fill = cluster.PeerFill(ring, *shardID, peers, nil, 0)
	}

	// Flag 0 = auto is server config -1 (server reads 0 as its sequential
	// default).
	selectorWorkers := *selWork
	if selectorWorkers == 0 {
		selectorWorkers = -1
	}
	// Stitched traces tag spans with the shard id when there is one — that
	// is the name peers and the router use in their TracePeers maps — and
	// fall back to the OTLP service name for a standalone process. The
	// -peers map doubles as the trace fan-out targets: the same shards that
	// can fill this cache can hold fragments of this trace.
	service := *svcName
	if *shardID != "" {
		service = *shardID
	}
	srv := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		Timeout:         *timeout,
		StepBudget:      *budget,
		MaxPaths:        *paths,
		SelectorWorkers: selectorWorkers,
		Cache:           tiered,
		CacheEntries:    *cache,
		MaxBodyBytes:    *maxBody,
		Logger:          logger,
		Tracer:          tracer,
		EventLog:        events,
		CacheFill:       fill,
		SLO:             sloEval,
		Service:         service,
		TracePeers:      peers,
	})
	if len(peers) > 0 {
		srv.Mount("POST "+cluster.FillPath, cluster.FillHandler(srv.Cache(), *maxBody))
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	sloEval.Start()
	if exporter != nil {
		exporter.Start()
	}

	var dbg *http.Server
	if *debugAddr != "" {
		dbg = &http.Server{
			Addr: *debugAddr,
			Handler: server.DebugHandler(server.DebugOptions{
				Tracer: tracer,
				Events: events,
				SLO:    sloEval,
				Trace: server.TraceHandler(server.TraceOptions{
					Service: service,
					Tracer:  tracer,
					Peers:   peers,
				}),
			}),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	rc := srv.ResolvedConfig()
	ver, goVer := obs.Version()
	logger.Info("sigrecd listening",
		"addr", *addr,
		"debug_addr", *debugAddr,
		"workers", rc.Workers,
		"queue", rc.QueueDepth,
		"timeout", rc.Timeout.String(),
		"step_budget", rc.StepBudget,
		"max_paths", rc.MaxPaths,
		"cache_entries", *cache,
		"store_dir", *storeDir,
		"selector_workers", *selWork,
		"max_body", rc.MaxBodyBytes,
		"tracing", tracer != nil,
		"event_log", *eventLog,
		"event_log_max_mb", *eventMB,
		"sample_rate", *sampleR,
		"shard_id", *shardID,
		"peers", len(peers),
		"otlp_endpoint", *otlpEP,
		"service_name", *svcName,
		"version", ver,
		"go_version", goVer,
	)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	logger.Info("sigrecd draining", "deadline", (*drain).String())
	srv.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting and wait for inflight handlers, then flush the worker
	// pool (queued jobs finish) and emit the final telemetry snapshot.
	serr := hs.Shutdown(sctx)
	derr := srv.Drain(sctx)
	if dbg != nil {
		_ = dbg.Shutdown(sctx)
	}
	sloEval.Close()
	// Flush the export queue after the pool drains so the collector sees
	// the final recoveries and terminal counter values.
	if exporter != nil {
		if err := exporter.Close(sctx); err != nil {
			logger.Warn("otlp exporter close timed out", "err", err)
		}
	}
	// The flight recorder's retained span trees would die with the process;
	// dump them into the durable event log as an auxiliary record (or to
	// stderr when no log is configured) so the last slow/truncated traces
	// survive the restart. Then close the log: drain, flush, fsync.
	if tracer != nil {
		snap := tracer.Recorder().Snapshot()
		if len(snap.Slowest) > 0 || len(snap.Truncated) > 0 {
			if events != nil {
				if seq := events.EmitAux("flight_recorder", snap); seq == 0 {
					logger.Warn("flight-recorder dump dropped (event log closed or queue full)")
				}
			} else {
				enc := json.NewEncoder(os.Stderr)
				if err := enc.Encode(map[string]any{"kind": "flight_recorder", "data": snap}); err != nil {
					logger.Warn("flight-recorder dump failed", "err", err)
				}
			}
		}
	}
	if events != nil {
		if err := events.Close(); err != nil {
			logger.Error("event log close failed", "err", err)
		}
	}
	if resultStore != nil {
		// Export the store's recovered signatures as an EFSD-format JSON
		// next to the segments (selector -> placeholder-named signature,
		// loadable with efsd.LoadTrusted), then sync and close the store.
		if err := exportEFSD(resultStore, filepath.Join(*storeDir, "efsd.json")); err != nil {
			logger.Error("efsd export failed", "err", err)
		}
		if err := resultStore.Close(); err != nil {
			logger.Error("result store close failed", "err", err)
		} else {
			st := resultStore.Stats()
			logger.Info("result store closed", "records", st.Records, "segments", st.Segments)
		}
	}
	if err := sigrec.WriteMetrics(os.Stderr); err == nil {
		logger.Info("sigrecd drained")
	}
	return errors.Join(serr, derr)
}

// exportEFSD walks every stored result and writes the recovered functions
// as a signature database: the durable artifact other tools (sigrec -db,
// the baselines) can consume without replaying recoveries.
func exportEFSD(s *store.Store, path string) error {
	db := efsd.New()
	s.Keys(func(key [32]byte) bool {
		res, _, ok := s.Load(key)
		if !ok {
			return true
		}
		for _, fn := range res.Functions {
			db.AddRecovered(fn.Selector, fn.TypeList())
		}
		return true
	})
	f, err := os.CreateTemp(filepath.Dir(path), ".efsd-*")
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}

// validateFlags rejects flag values that would otherwise fail obscurely
// deep in the serving layer (a negative worker count silently selecting
// GOMAXPROCS, a zero queue shedding everything, a zero body cap rejecting
// every request).
func validateFlags(workers, queue int, maxBody int64, selectorWorkers int) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", workers)
	}
	if queue <= 0 {
		return fmt.Errorf("-queue must be positive, got %d", queue)
	}
	if maxBody <= 0 {
		return fmt.Errorf("-maxbody must be positive, got %d", maxBody)
	}
	if selectorWorkers < 0 {
		return fmt.Errorf("-selector-workers must be >= 0 (0 = auto, 1 = sequential), got %d", selectorWorkers)
	}
	return nil
}

// parsePeers parses the -peers flag: "id1=http://host:port,id2=...".
func parsePeers(spec string) (map[string]string, error) {
	peers := map[string]string{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("-peers entry %q is not id=url", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("-peers lists shard %q twice", id)
		}
		peers[id] = strings.TrimSuffix(url, "/")
	}
	return peers, nil
}

// usageError prints the flag summary after the error so a misconfigured
// service fails with actionable output rather than a bare message.
func usageError(err error) error {
	flag.Usage()
	return err
}

// buildLogger maps the -log-format/-log-level flags onto a slog.Logger
// writing to stderr.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}
