// Command sigrecd serves SigRec signature recovery over HTTP.
//
// Usage:
//
//	sigrecd -addr :8409 -workers 8 -queue 128 -timeout 2s -cache 65536
//
// Endpoints (see internal/server):
//
//	POST /v1/recover        hex bytecode -> JSON recovery
//	POST /v1/recover/batch  NDJSON in -> NDJSON out, streamed
//	GET  /metrics           Prometheus-flavoured exposition
//	GET  /healthz           liveness + pool state
//
// Recoveries run on a bounded worker pool behind a bounded admission
// queue: when the queue is full, single recovers are shed with 429 +
// Retry-After instead of queueing unboundedly. Identical concurrent
// bytecodes are coalesced into one recovery in front of the shared result
// cache. SIGTERM/SIGINT triggers graceful drain: stop accepting, finish
// inflight work, flush a final metrics snapshot to stderr, exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sigrec"
	"sigrec/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sigrecd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8409", "listen address")
		workers = flag.Int("workers", 0, "concurrent recoveries (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", server.DefaultQueueDepth, "admission queue depth; beyond it requests are shed with 429")
		timeout = flag.Duration("timeout", 2*time.Second, "per-request recovery deadline (0 = unbounded)")
		budget  = flag.Int("budget", 0, "TASE step budget per exploration (0 = built-in default)")
		paths   = flag.Int("maxpaths", 0, "explored-path cap per exploration (0 = built-in default)")
		cache   = flag.Int("cache", server.DefaultCacheEntries, "result-cache entries (keccak-keyed LRU)")
		maxBody = flag.Int64("maxbody", server.DefaultMaxBodyBytes, "max request-body bytes (and max batch line)")
		drain   = flag.Duration("drain", 15*time.Second, "graceful-drain deadline on SIGTERM/SIGINT")
	)
	flag.Parse()

	srv := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		Timeout:      *timeout,
		StepBudget:   *budget,
		MaxPaths:     *paths,
		CacheEntries: *cache,
		MaxBodyBytes: *maxBody,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("sigrecd listening on %s", *addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	log.Printf("sigrecd draining (deadline %s)", *drain)
	srv.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting and wait for inflight handlers, then flush the worker
	// pool (queued jobs finish) and emit the final telemetry snapshot.
	serr := hs.Shutdown(sctx)
	derr := srv.Drain(sctx)
	if err := sigrec.WriteMetrics(os.Stderr); err == nil {
		log.Printf("sigrecd drained")
	}
	return errors.Join(serr, derr)
}
