// Command evmrun executes EVM runtime bytecode against call data on the
// in-repo concrete interpreter, reporting the outcome, gas, storage
// effects, and (optionally) per-instruction coverage. It pairs with
// cmd/sigrec for a recover-then-exercise workflow.
//
// Usage:
//
//	evmrun -code 0x6080... -data 0xa9059cbb...
//	evmrun -codefile c.hex -data 0x... -gas 100000 -coverage
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"sigrec/internal/evm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evmrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		codeHex  = flag.String("code", "", "runtime bytecode (hex)")
		codeFile = flag.String("codefile", "", "read bytecode hex from a file")
		dataHex  = flag.String("data", "", "call data (hex)")
		gas      = flag.Uint64("gas", 0, "gas budget (0 = unlimited)")
		coverage = flag.Bool("coverage", false, "report instruction coverage")
		trace    = flag.Bool("trace", false, "print every executed instruction")
	)
	flag.Parse()

	rawCode := *codeHex
	if *codeFile != "" {
		b, err := os.ReadFile(*codeFile)
		if err != nil {
			return err
		}
		rawCode = string(b)
	}
	code, err := decodeHex(rawCode)
	if err != nil {
		return fmt.Errorf("bytecode: %w", err)
	}
	data, err := decodeHex(*dataHex)
	if err != nil {
		return fmt.Errorf("call data: %w", err)
	}

	ctx := evm.CallContext{
		CallData:        data,
		Gas:             *gas,
		CollectCoverage: *coverage,
	}
	if *trace {
		ctx.Tracer = func(s evm.TraceStep) {
			top := ""
			if n := len(s.Stack); n > 0 {
				top = "  top=" + s.Stack[n-1].Hex()
			}
			fmt.Printf("%05x %-14s gas=%-8d depth=%d stack=%d%s\n",
				s.PC, s.Op, s.GasUsed, s.Depth, len(s.Stack), top)
		}
	}
	in := evm.NewInterpreter(code)
	res := in.Execute(ctx)

	switch {
	case res.Err != nil:
		fmt.Printf("outcome:  fault (%v)\n", res.Err)
	case res.Reverted:
		fmt.Printf("outcome:  reverted\n")
	default:
		fmt.Printf("outcome:  success\n")
	}
	fmt.Printf("steps:    %d\n", res.Steps)
	fmt.Printf("gas used: %d\n", res.GasUsed)
	if len(res.ReturnData) > 0 {
		fmt.Printf("return:   0x%x\n", res.ReturnData)
	}
	store := in.Storage()
	if len(store) > 0 {
		fmt.Printf("storage writes (%d):\n", len(store))
		keys := make([]string, 0, len(store))
		byKey := make(map[string]string, len(store))
		for k, v := range store {
			keys = append(keys, k.Hex())
			byKey[k.Hex()] = v.Hex()
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s = %s\n", k, byKey[k])
		}
	}
	for i, lg := range res.Logs {
		fmt.Printf("log %d: topics=%v data=0x%x\n", i, lg.Topics, lg.Data)
	}
	if *coverage {
		total := len(evm.Disassemble(code).Instructions)
		fmt.Printf("coverage: %d/%d instructions\n", len(res.Coverage), total)
	}
	return nil
}

func decodeHex(s string) ([]byte, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "0x"))
	if s == "" {
		return nil, nil
	}
	return hex.DecodeString(s)
}
