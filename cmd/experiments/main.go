// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run e1,e7] [-scale 1.0] [-seed 42]
//
// With no -run flag it executes every experiment (E1-E13) in order and
// prints each table.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sigrec/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		only   = flag.String("run", "", "comma-separated experiment ids (e1..e14); empty runs all")
		scale  = flag.Float64("scale", 1.0, "corpus scale factor (1.0 = full)")
		seed   = flag.Int64("seed", 42, "generator seed")
		format = flag.String("format", "text", "output format: text or md")
		outDir = flag.String("o", "", "also write one file per table into this directory")
	)
	flag.Parse()
	params := experiments.Params{Seed: *seed, Scale: *scale}

	var runners []experiments.Runner
	if *only == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			runners = append(runners, r)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	for _, r := range runners {
		start := time.Now()
		tb, err := r.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		rendered := tb.String()
		ext := ".txt"
		if *format == "md" {
			rendered = tb.Markdown()
			ext = ".md"
		}
		fmt.Println(rendered)
		fmt.Printf("  [%s completed in %v]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			path := filepath.Join(*outDir, r.ID+ext)
			if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
