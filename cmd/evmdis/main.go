// Command evmdis disassembles EVM runtime bytecode (Geth-style linear
// sweep) and optionally prints basic blocks.
//
// Usage:
//
//	evmdis 0x6080...
//	evmdis -blocks -f contract.hex
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sigrec/internal/evm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evmdis:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		file   = flag.String("f", "", "read hex bytecode from a file")
		blocks = flag.Bool("blocks", false, "print basic-block boundaries")
	)
	flag.Parse()

	var input string
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		input = string(b)
	case flag.NArg() > 0:
		input = flag.Arg(0)
	default:
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		input = string(b)
	}
	code, err := hex.DecodeString(strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(input), "0x")))
	if err != nil {
		return fmt.Errorf("decode hex: %w", err)
	}
	program := evm.Disassemble(code)
	if !*blocks {
		fmt.Print(program.String())
		return nil
	}
	for i, bb := range program.BasicBlocks() {
		fmt.Printf("block %d: [%#x, %#x]\n", i, bb.Start, bb.End)
		for _, ins := range program.Instructions[bb.First : bb.Last+1] {
			fmt.Printf("  %s\n", ins)
		}
	}
	return nil
}
