// Command evaluate measures SigRec's accuracy against a labeled corpus
// file (the cmd/corpusgen interchange format), printing per-language
// accuracy and a breakdown of the misses.
//
// Usage:
//
//	corpusgen -solidity 500 > corpus.json
//	evaluate -corpus corpus.json
package main

import (
	"flag"
	"fmt"
	"os"

	"sigrec/internal/abi"
	"sigrec/internal/core"
	"sigrec/internal/corpus"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		path    = flag.String("corpus", "", "labeled corpus JSON (required)")
		verbose = flag.Bool("v", false, "print every miss")
	)
	flag.Parse()
	if *path == "" {
		return fmt.Errorf("-corpus is required")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := corpus.ReadJSON(f)
	if err != nil {
		return err
	}

	type bucket struct{ total, correct int }
	byLang := map[string]*bucket{}
	flawMisses := map[string]int{}
	cleanMisses := 0
	for _, e := range entries {
		lang := e.Language.String()
		b := byLang[lang]
		if b == nil {
			b = &bucket{}
			byLang[lang] = b
		}
		b.total++
		rec, _ := core.RecoverFunction(e.Code, e.Sig.Selector())
		got := abi.Signature{Name: e.Sig.Name, Inputs: rec.Inputs}
		if got.EqualTypes(e.Sig) {
			b.correct++
			continue
		}
		if e.Flaw != "" {
			flawMisses[e.Flaw]++
		} else {
			cleanMisses++
		}
		if *verbose {
			fmt.Printf("miss: %-50s -> %-30s flaw=%q\n", e.Sig.Canonical(), got.TypeList(), e.Flaw)
		}
	}

	total, correct := 0, 0
	for lang, b := range byLang {
		total += b.total
		correct += b.correct
		fmt.Printf("%-10s %5d functions  accuracy %.2f%%\n",
			lang, b.total, 100*float64(b.correct)/float64(b.total))
	}
	if total > 0 {
		fmt.Printf("%-10s %5d functions  accuracy %.2f%%\n",
			"overall", total, 100*float64(correct)/float64(total))
	}
	if len(flawMisses) > 0 {
		fmt.Println("\nmisses by labeled flaw:")
		for flaw, n := range flawMisses {
			fmt.Printf("  %4d  %s\n", n, flaw)
		}
	}
	if cleanMisses > 0 {
		fmt.Printf("\nWARNING: %d misses on clue-rich entries (regressions?)\n", cleanMisses)
	}
	return nil
}
