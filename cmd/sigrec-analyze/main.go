// Command sigrec-analyze replays sigrec wide-event logs offline.
//
// Usage:
//
//	sigrec-analyze events.ndjson            # active file + rotated siblings
//	sigrec-analyze -json events.ndjson      # machine-readable report
//	sigrec-analyze -top 25 a.ndjson b.ndjson
//
// Each argument names an event-log base path as written by sigrecd
// -event-log (or sigrec -event-log); rotated segments (path.1, path.2,
// ...) are discovered and replayed automatically, oldest first. The
// report aggregates what /metrics can only approximate live: exact
// latency quantiles, the paper's Fig. 17 latency buckets, per-phase and
// per-rule attribution, the truncation-cause breakdown, and the top-K
// slowest recoveries with the seq/request-id join keys needed to pull
// their full records back out of the log. At sample-rate 1 the replay's
// recovery/error/truncation/rule-fire totals equal the server's counter
// deltas exactly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sigrec/internal/eventlog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sigrec-analyze:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		jsonOut = flag.Bool("json", false, "emit the report as JSON instead of text")
		topK    = flag.Int("top", 10, "rows in the slowest-recoveries table")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sigrec-analyze [-json] [-top K] <event-log> [more logs...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var events []eventlog.Event
	skipped := 0
	for _, path := range flag.Args() {
		ev, sk, err := eventlog.ReadLog(path)
		if err != nil {
			return err
		}
		events = append(events, ev...)
		skipped += sk
	}

	rep := eventlog.Analyze(events, *topK)
	rep.SkippedLines = skipped
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	rep.WriteText(os.Stdout)
	return nil
}
