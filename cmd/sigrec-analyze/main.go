// Command sigrec-analyze replays sigrec wide-event logs offline.
//
// Usage:
//
//	sigrec-analyze events.ndjson            # active file + rotated siblings
//	sigrec-analyze -json events.ndjson      # machine-readable report
//	sigrec-analyze -top 25 a.ndjson b.ndjson
//	sigrec-analyze -trace client-7 s1.ndjson s2.ndjson s3.ndjson
//
// Each argument names an event-log base path as written by sigrecd
// -event-log (or sigrec -event-log); rotated segments (path.1, path.2,
// ...) are discovered and replayed automatically, oldest first. The
// report aggregates what /metrics can only approximate live: exact
// latency quantiles, the paper's Fig. 17 latency buckets, per-phase and
// per-rule attribution, the truncation-cause breakdown, and the top-K
// slowest recoveries with the seq/request-id join keys needed to pull
// their full records back out of the log. At sample-rate 1 the replay's
// recovery/error/truncation/rule-fire totals equal the server's counter
// deltas exactly.
//
// -trace switches to the distributed-trace view: pass every shard's log
// and a client request id (or a raw 32-hex trace id) and the merged
// events that share its W3C trace id are printed as one timeline —
// primary, retries, and hedges side by side — with no live process or
// collector needed. Request ids resolve through the same deterministic
// keccak derivation the servers use, so the offline join is exact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sigrec/internal/eventlog"
	"sigrec/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sigrec-analyze:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		jsonOut = flag.Bool("json", false, "emit the report as JSON instead of text")
		topK    = flag.Int("top", 10, "rows in the slowest-recoveries table")
		traceID = flag.String("trace", "", "show one distributed trace instead of the aggregate report: a request id or 32-hex trace id, joined across every given log")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sigrec-analyze [-json] [-top K] [-trace ID] <event-log> [more logs...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var events []eventlog.Event
	skipped := 0
	for _, path := range flag.Args() {
		ev, sk, err := eventlog.ReadLog(path)
		if err != nil {
			return err
		}
		events = append(events, ev...)
		skipped += sk
	}

	if *traceID != "" {
		view := eventlog.TraceView(events, resolveTraceID(*traceID))
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(view)
		}
		view.WriteText(os.Stdout)
		return nil
	}

	rep := eventlog.Analyze(events, *topK)
	rep.SkippedLines = skipped
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	rep.WriteText(os.Stdout)
	return nil
}

// resolveTraceID accepts either wire form: a raw 32-hex trace id passes
// through, anything else is treated as a request id and derived the same
// way the servers derive roots for untraced requests.
func resolveTraceID(id string) string {
	if len(id) == 32 {
		hex := true
		for i := 0; i < len(id); i++ {
			c := id[i]
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
				hex = false
				break
			}
		}
		if hex {
			return id
		}
	}
	return obs.DeriveTraceID(id)
}
