package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCaptureDedupesEnvironmentHeader pipes two `go test` invocations'
// output through one capture — the way `make bench` does — and checks the
// environment header lines are recorded once, not once per invocation.
func TestCaptureDedupesEnvironmentHeader(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
		"BenchmarkE3TimeDistribution \t 100 \t 5000000 ns/op \t 5000000 B/op \t 16000 allocs/op",
		"PASS",
		// Second invocation re-prints the header.
		"goos: linux",
		"goarch: amd64",
		"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
		"BenchmarkServerThroughput-1 \t 30000 \t 36000 ns/op",
		"PASS",
	}, "\n")
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := capture(strings.NewReader(in), out); err != nil {
		t.Fatalf("capture: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"goos: linux", "goarch: amd64", "cpu: "} {
		if got := strings.Count(f.Go, frag); got != 1 {
			t.Errorf("go field records %q %d times, want 1: %q", frag, got, f.Go)
		}
	}
	if len(f.Benchmarks) != 2 {
		t.Errorf("captured %d benchmarks, want 2", len(f.Benchmarks))
	}
	if f.Benchmarks["ServerThroughput"].ReqPerSec == 0 {
		t.Error("throughput benchmark missing derived req_per_sec")
	}
}

func writeBenchFile(t *testing.T, benchmarks map[string]Result) string {
	t.Helper()
	data, err := json.Marshal(File{Benchmarks: benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGate(t *testing.T) {
	path := writeBenchFile(t, map[string]Result{
		"Warm":        {NsPerOp: 9000},
		"ParallelOff": {NsPerOp: 100, MeanNsPerOp: 100},
		"ParallelOn":  {NsPerOp: 40, MeanNsPerOp: 40},
		"Slow":        {NsPerOp: 80, MeanNsPerOp: 80},
	})
	tests := []struct {
		name            string
		basebench, benc string
		metric          string
		tolerance, max  float64
		wantErr         bool
	}{
		{"absolute ceiling pass", "", "Warm", "ns_per_op", 0, 50000, false},
		{"absolute ceiling fail", "", "Warm", "ns_per_op", 0, 5000, true},
		{"speedup demand met", "ParallelOff", "ParallelOn", "mean_ns_per_op", -0.5, 0, false},
		{"speedup demand missed", "ParallelOff", "Slow", "mean_ns_per_op", -0.5, 0, true},
		{"regression within tolerance", "ParallelOn", "Slow", "ns_per_op", 1.5, 0, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := gate(path, path, tc.basebench, tc.benc, tc.metric, tc.tolerance, tc.max)
			if (err != nil) != tc.wantErr {
				t.Fatalf("gate err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}
