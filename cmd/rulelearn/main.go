// Command rulelearn demonstrates the paper's §3.1 rule-generation pipeline:
// it generates single-parameter contracts for a type family, extracts each
// accessing pattern, and prints the family's common pattern and the
// structural residual relative to the element type.
//
// Usage:
//
//	rulelearn                    # the built-in derivations
//	rulelearn -family uint       # one family: uint, int, staticarray,
//	                             # dynarray, bytes
package main

import (
	"flag"
	"fmt"
	"os"

	"sigrec/internal/abi"
	"sigrec/internal/rulelearn"
	"sigrec/internal/solc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rulelearn:", err)
		os.Exit(1)
	}
}

func run() error {
	family := flag.String("family", "", "single family to derive (uint, int, staticarray, dynarray, bytes)")
	flag.Parse()

	families := []string{"uint", "int", "staticarray", "dynarray", "bytes"}
	if *family != "" {
		families = []string{*family}
	}
	for _, f := range families {
		if err := derive(f); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func derive(family string) error {
	switch family {
	case "uint":
		var types []abi.Type
		for bits := 8; bits < 256; bits += 8 {
			types = append(types, abi.Uint(bits))
		}
		_, common, err := rulelearn.Family(types, solc.External)
		if err != nil {
			return err
		}
		fmt.Printf("uint8..uint248 (external) common pattern:\n  %s\n", common)
		fmt.Println("  -> rule R11: CALLDATALOAD masked by AND identifies uintM")
	case "int":
		var types []abi.Type
		for bits := 8; bits < 256; bits += 8 {
			types = append(types, abi.Int(bits))
		}
		_, common, err := rulelearn.Family(types, solc.External)
		if err != nil {
			return err
		}
		fmt.Printf("int8..int248 (external) common pattern:\n  %s\n", common)
		fmt.Println("  -> rule R13: SIGNEXTEND identifies intM")
	case "staticarray":
		elem, err := rulelearn.CollectPattern(abi.Uint(8), solc.External)
		if err != nil {
			return err
		}
		var types []abi.Type
		for n := 1; n <= 10; n++ {
			types = append(types, abi.ArrayOf(abi.Uint(8), n))
		}
		_, common, err := rulelearn.Family(types, solc.External)
		if err != nil {
			return err
		}
		fmt.Printf("uint8[1]..uint8[10] (external) common pattern:\n  %s\n", common)
		fmt.Printf("residual over uint8:\n  %s\n", rulelearn.Subtract(common, elem.Pattern))
		fmt.Println("  -> rule R3: LT bound checks guard the element loads")
	case "dynarray":
		elem, err := rulelearn.CollectPattern(abi.Uint(8), solc.Public)
		if err != nil {
			return err
		}
		arr, err := rulelearn.CollectPattern(abi.SliceOf(abi.Uint(8)), solc.Public)
		if err != nil {
			return err
		}
		fmt.Printf("uint8[] (public) pattern:\n  %s\n", arr.Pattern)
		fmt.Printf("residual over uint8:\n  %s\n", rulelearn.Subtract(arr.Pattern, elem.Pattern))
		fmt.Println("  -> rules R1/R5/R7: offset+num loads, then a copy of num*32 bytes")
	case "bytes":
		b, err := rulelearn.CollectPattern(abi.Bytes(), solc.Public)
		if err != nil {
			return err
		}
		fmt.Printf("bytes (public) pattern:\n  %s\n", b.Pattern)
		fmt.Println("  -> rule R8: the copy length rounds up with DIV instead of multiplying")
	default:
		return fmt.Errorf("unknown family %q", family)
	}
	return nil
}
