// Command parchecker demonstrates the §6.1 pipeline end to end: it
// generates a fleet of contracts, recovers their signatures with SigRec,
// generates a synthetic transaction stream with a controlled rate of
// malformed arguments, and scans it for invalid actual arguments and
// short-address attacks.
//
// Usage:
//
//	parchecker -blocks 500 -tx 40 -invalid 0.01 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"

	"sigrec/internal/abi"
	"sigrec/internal/chain"
	"sigrec/internal/core"
	"sigrec/internal/corpus"
	"sigrec/internal/parchecker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "parchecker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		blocks  = flag.Int("blocks", 500, "blocks to scan")
		txPerB  = flag.Int("tx", 40, "transactions per block")
		invalid = flag.Float64("invalid", 0.01, "malformed-argument rate")
		seed    = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	// Deploy a fleet and recover its signatures from bytecode alone.
	cfg := corpus.DefaultConfig(*seed)
	cfg.Solidity, cfg.Vyper, cfg.AmbiguityRate = 150, 0, 0
	fleet, err := corpus.Generate(cfg)
	if err != nil {
		return err
	}
	var sigs []abi.Signature
	var results []core.Result
	for _, e := range fleet.Entries {
		res, err := core.Recover(e.Code)
		if err != nil {
			continue
		}
		results = append(results, res)
		sigs = append(sigs, e.Sig)
	}
	checker := parchecker.FromRecovery(results...)
	fmt.Printf("recovered signatures for %d contracts\n", len(results))

	ccfg := chain.Config{
		Seed: *seed, Blocks: *blocks, TxPerBlock: *txPerB,
		InvalidRate: *invalid, ShortAddressShare: 0.08,
	}
	w, err := chain.Generate(ccfg, sigs)
	if err != nil {
		return err
	}
	payloads := make([][]byte, len(w.Txs))
	for i, tx := range w.Txs {
		payloads[i] = tx.CallData
	}
	st, err := checker.ScanParallel(payloads, 0)
	if err != nil {
		return err
	}
	fmt.Printf("scanned %d transactions in %d blocks\n", st.Total, *blocks)
	fmt.Printf("  valid:                 %d\n", st.Valid)
	fmt.Printf("  invalid arguments:     %d\n", st.Invalid)
	fmt.Printf("  short-address attacks: %d\n", st.ShortAddress)
	fmt.Printf("  unknown functions:     %d\n", st.Unknown)
	fmt.Printf("  unique targets flagged: %d\n", len(st.UniqueTargets))
	return nil
}
