package main

import "testing"

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name       string
		selWorkers int
		wantErr    bool
	}{
		{"auto", 0, false},
		{"sequential", 1, false},
		{"explicit", 8, false},
		{"negative", -1, true},
		{"very negative", -100, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.selWorkers)
			if (err != nil) != tc.wantErr {
				t.Fatalf("validateFlags(%d) = %v, wantErr %v", tc.selWorkers, err, tc.wantErr)
			}
		})
	}
}
