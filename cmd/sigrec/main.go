// Command sigrec recovers function signatures from EVM runtime bytecode.
//
// Usage:
//
//	sigrec 0x6080...            # hex bytecode as an argument
//	sigrec -f contract.hex      # or from a file
//	echo 0x6080... | sigrec     # or from stdin
//	sigrec -db sigs.json ...    # annotate with names from a signature DB
//
// Output: one line per recovered function: the 4-byte id, the parameter
// type list, and the detected source language. SigRec recovers ids and
// types from the bytecode alone; a signature database (-db, the format
// cmd/corpusgen and efsd.Save emit) only adds human-readable names, and
// only when its types agree with the recovery.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sigrec"
	"sigrec/internal/core"
	"sigrec/internal/efsd"
	"sigrec/internal/eventlog"
	"sigrec/internal/obs"
	"sigrec/internal/server"
	"sigrec/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sigrec:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		file     = flag.String("f", "", "read hex bytecode from a file")
		rules    = flag.Bool("rules", false, "print rule-usage statistics")
		explain  = flag.Bool("explain", false, "print per-parameter rule trails")
		dbPath   = flag.String("db", "", "JSON signature database for name annotation")
		deployed = flag.Bool("deployed", false, "input is deployment (init) bytecode: execute it to extract the runtime first")
		jsonOut  = flag.Bool("json", false, "emit JSON instead of text")
		timeout  = flag.Duration("timeout", 0, "per-contract wall-clock deadline (e.g. 100ms; 0 = unbounded); on expiry a partial result is printed, flagged truncated")
		budget   = flag.Int("budget", 0, "TASE step budget per exploration (0 = built-in default)")
		selWork  = flag.Int("selector-workers", 0, "parallel selector explorations (0 = auto up to GOMAXPROCS, 1 = sequential)")
		storeDir = flag.String("store-dir", "", "persistent result-store directory: repeat runs over the same bytecode are served from disk (empty = disabled)")
		stats    = flag.Bool("stats", false, "print the telemetry exposition (timings, path counts, rule hits) after the run")
		trace    = flag.Bool("trace", false, "print the recovery's span tree (phase timings, per-selector exploration counters) to stderr")
		eventLog = flag.String("event-log", "", "append the recovery's wide event (NDJSON) to this file, replayable with sigrec-analyze")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString())
		return nil
	}

	if err := validateFlags(*selWork); err != nil {
		return usageError(err)
	}

	var db *efsd.DB
	if *dbPath != "" {
		f, err := os.Open(*dbPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if db, err = efsd.Load(f); err != nil {
			return err
		}
	}

	var input string
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		input = string(b)
	case flag.NArg() > 0:
		input = flag.Arg(0)
	default:
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		input = string(b)
	}

	opts := sigrec.Options{Deadline: *timeout, StepBudget: *budget, SelectorWorkers: *selWork}
	if *storeDir != "" {
		st, serr := store.Open(*storeDir, store.Options{})
		if serr != nil {
			return serr
		}
		defer st.Close()
		// A one-shot CLI run needs almost no memory tier; the disk store
		// does the cross-invocation work.
		opts.Cache = core.NewTieredCache(16, st).Cache
	}
	code, err := decodeHexInput(input)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *eventLog != "" {
		w, werr := eventlog.New(eventlog.Config{Path: *eventLog})
		if werr != nil {
			return werr
		}
		defer w.Close() // drains, flushes, fsyncs the one event
		opts.EventLog = w
		ctx, _ = eventlog.NewContext(ctx, "cli")
	}
	var rec *obs.Recovery
	if *trace {
		ctx, rec = obs.New(obs.Config{}).StartRecovery(ctx, "cli")
	}
	var res sigrec.Result
	if *deployed {
		res, err = sigrec.RecoverDeploymentContext(ctx, code, opts)
	} else {
		res, err = sigrec.RecoverContext(ctx, code, opts)
	}
	if rec != nil {
		// The trace header carries request_id (and event_seq when -event-log
		// is set), the join keys into logs and the wide-event file.
		rec.Finish(res.Truncated, err)
		rec.WriteText(os.Stderr)
	}
	if err != nil {
		return err
	}
	if *stats {
		defer sigrec.WriteMetrics(os.Stderr)
	}
	if *jsonOut {
		return emitJSON(os.Stdout, res, db)
	}
	for _, f := range res.Functions {
		note := ""
		if f.Truncated {
			note = "  (truncated analysis)"
		}
		display := f.TypeList()
		if db != nil {
			if known, ok := db.Lookup(f.Selector); ok {
				// Annotate with the known name when the types agree; flag
				// disagreements, which usually mean the database is stale.
				if typeList(known) == f.TypeList() {
					display = known
				} else {
					note += fmt.Sprintf("  (db has %s)", known)
				}
			}
		}
		fmt.Printf("%s %s  [%s]%s\n", f.Selector.Hex(), display, f.Language, note)
		if *explain {
			for _, line := range f.Explain() {
				fmt.Printf("    %s\n", line)
			}
		}
	}
	if *rules {
		fmt.Println(strings.Repeat("-", 40))
		for r := 1; r <= 31; r++ {
			fmt.Printf("R%-3d %d\n", r, res.Rules[r])
		}
	}
	return nil
}

// emitJSON writes the wire schema the sigrecd server returns
// (server.RecoverResponse), so CLI and server outputs are diffable.
func emitJSON(w io.Writer, res sigrec.Result, db *efsd.DB) error {
	var annotate server.Annotate
	if db != nil {
		annotate = db.Lookup
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(server.ResponseFromResult(res, annotate))
}

// validateFlags rejects flag values that would otherwise be silently
// reinterpreted (mirroring sigrecd's usage-error treatment).
func validateFlags(selectorWorkers int) error {
	if selectorWorkers < 0 {
		return fmt.Errorf("-selector-workers must be >= 0 (0 = auto, 1 = sequential), got %d", selectorWorkers)
	}
	return nil
}

// usageError prints the flag summary after the error so a bad invocation
// fails with actionable output rather than a bare message.
func usageError(err error) error {
	flag.Usage()
	return err
}

// decodeHexInput tolerates a 0x prefix and surrounding whitespace and
// reports malformed input with a typed *sigrec.HexInputError.
func decodeHexInput(s string) ([]byte, error) {
	return sigrec.DecodeHex(s)
}

func typeList(canonical string) string {
	if i := strings.IndexByte(canonical, '('); i >= 0 {
		return canonical[i:]
	}
	return "()"
}
