// Command sigrec-scan follows a chain and recovers function signatures
// from every contract deployment it sees, forever.
//
// Usage:
//
//	sigrec-scan -data /var/lib/sigrec-scan -seed 1 -chain-blocks 2000 -end 1999
//	sigrec-scan -data /var/lib/sigrec-scan -seed 1 -chain-blocks 100000 -live
//
// The scanner runs one bounded pipeline in two modes: backfill (scan a
// historical range at full throughput, then exit) and live (tail the
// head with bounded lag until signaled). Stages: block ingest ->
// deployment extraction -> proxy resolution (byte-exact EIP-1167
// matching plus a bounded concrete-interpreter probe for non-minimal
// DELEGATECALL forwarders) -> dedupe against the persistent result store
// -> recovery -> publish into the EFSD JSON and the wide-event log.
//
// Progress is checkpointed durably under -data/checkpoint: the event log
// is fsynced before each cursor save, so a SIGKILLed scanner restarted
// with the same flags resumes exactly, recomputing nothing that reached
// the store and losing nothing that reached the cursor. The chain source
// is the deterministic synthetic chain from internal/chain (block
// content is a pure function of -seed and the block number), standing in
// for an RPC-backed source the way internal/chain's workload generator
// stands in for mainnet in the ParChecker experiments.
//
// The scan event log is always lossless (no sampling): crash-recovery
// reconciliation needs every deployment's record.
//
// -debug-addr starts the scanner's operator surface — /metrics, /healthz,
// /debug/slowest, /debug/slo, /debug/events, and pprof — the same mux
// sigrecd serves, so fleet dashboards scrape every binary identically.
// -otlp-endpoint exports per-deployment span trees and metrics snapshots
// to an OTLP/HTTP collector; an SLO burn-rate engine always evaluates
// scan availability and recovery latency, logging alert transitions as
// "slo_alert" wide events.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"sigrec/internal/chain"
	"sigrec/internal/core"
	"sigrec/internal/eventlog"
	"sigrec/internal/obs"
	"sigrec/internal/otlp"
	"sigrec/internal/scan"
	"sigrec/internal/server"
	"sigrec/internal/slo"
	"sigrec/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sigrec-scan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataDir = flag.String("data", "", "state directory: store/, checkpoint/, events.ndjson, efsd.json (required)")

		seed      = flag.Int64("seed", 1, "synthetic chain seed (same seed = same chain)")
		chainLen  = flag.Uint64("chain-blocks", 10000, "synthetic chain length in blocks")
		perBlock  = flag.Int("deploys-per-block", 4, "contract deployments per block")
		proxyRate = flag.Float64("proxy-rate", 0.35, "fraction of deployments that are proxies")
		facade    = flag.Float64("facade-share", 0.25, "share of proxies that are non-minimal DELEGATECALL facades")
		templates = flag.Int("templates", 16, "distinct implementation contracts on the synthetic chain")

		live      = flag.Bool("live", false, "follow the head instead of backfilling a fixed range")
		headStart = flag.Uint64("head-start", 0, "live mode: head block at startup")
		headMS    = flag.Int("head-interval-ms", 0, "live mode: milliseconds per new block (0 = head fixed at the chain end)")
		endBlock  = flag.Uint64("end", 0, "backfill mode: last block to scan, inclusive (0 = chain end)")
		poll      = flag.Duration("poll", scan.DefaultPollInterval, "live mode head poll interval")

		workers  = flag.Int("workers", scan.DefaultWorkers, "recovery worker pool size")
		queue    = flag.Int("queue", scan.DefaultQueueDepth, "pipeline channel depth (bounds ingest-ahead)")
		ckEvery  = flag.Int("checkpoint-every", scan.DefaultCheckpointEvery, "deployments between checkpoint saves")
		cacheEnt = flag.Int("cache", 4096, "in-memory result-cache entries over the store")

		budget  = flag.Int("budget", 0, "TASE step budget per exploration (0 = built-in default)")
		paths   = flag.Int("maxpaths", 0, "explored-path cap per exploration (0 = built-in default)")
		timeout = flag.Duration("timeout", 2*time.Second, "per-contract recovery deadline (0 = unbounded)")
		selWork = flag.Int("selector-workers", 0, "parallel selector explorations per contract (0 = auto)")

		eventMB   = flag.Int("event-log-max-mb", 64, "rotate the event log past this many MB per segment")
		debugAddr = flag.String("debug-addr", "", "listen address for the scanner's operator surface: /metrics, /healthz, /debug/slowest, /debug/trace/{id}, /debug/slo, /debug/events, pprof (empty = disabled)")
		otlpEP    = flag.String("otlp-endpoint", "", "OTLP/HTTP collector base URL; deployment span trees and metrics are exported there (empty = export off)")
		otlpIntv  = flag.Duration("otlp-interval", otlp.DefaultInterval, "OTLP flush cadence: trace batches at least this often, one metrics snapshot per tick")
		svcName   = flag.String("service-name", "sigrec-scan", "service.name resource attribute on every OTLP export")
		sloLatUS  = flag.Duration("slo-latency-threshold", 500*time.Millisecond, "latency SLO: the duration 99% of recoveries must complete under (0 = latency objective off)")
		slowest   = flag.Int("trace-slowest", obs.DefaultSlowest, "recoveries retained in the flight recorder (0 = tracing off)")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		stats     = flag.Bool("stats", true, "dump a final metrics snapshot to stderr on exit")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString())
		return nil
	}
	if *dataDir == "" {
		flag.Usage()
		return errors.New("-data is required")
	}
	if *perBlock <= 0 || *templates <= 0 || *chainLen == 0 {
		return errors.New("-deploys-per-block, -templates, and -chain-blocks must be positive")
	}

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dataDir, 0o755); err != nil {
		return err
	}

	tmpls, err := chain.SyntheticTemplates(*seed, *templates)
	if err != nil {
		return err
	}
	source, err := chain.NewSynthetic(chain.SourceConfig{
		Seed:            *seed,
		Blocks:          *chainLen,
		DeploysPerBlock: *perBlock,
		ProxyRate:       *proxyRate,
		FacadeShare:     *facade,
		Templates:       chain.TemplateCodes(tmpls),
		HeadStart:       *headStart,
		HeadInterval:    time.Duration(*headMS) * time.Millisecond,
	})
	if err != nil {
		return err
	}

	resultStore, err := store.Open(filepath.Join(*dataDir, "store"), store.Options{})
	if err != nil {
		return err
	}
	events, err := eventlog.New(eventlog.Config{
		Path:     filepath.Join(*dataDir, "events.ndjson"),
		MaxBytes: int64(*eventMB) << 20,
		Registry: core.Metrics(),
	})
	if err != nil {
		resultStore.Close()
		return err
	}
	cp, resume, haveResume, err := scan.OpenCheckpoint(filepath.Join(*dataDir, "checkpoint"))
	if err != nil {
		events.Close()
		resultStore.Close()
		return err
	}

	end := *endBlock
	if end == 0 || end >= *chainLen {
		end = *chainLen - 1
	}

	// OTLP export: per-deployment span trees flow tracer -> exporter sink
	// -> collector; metrics snapshots ship each interval. -trace-slowest 0
	// disables span export along with the flight recorder.
	reg := core.Metrics()
	var exporter *otlp.Exporter
	if *otlpEP != "" {
		ver, _ := obs.Version()
		exporter = otlp.New(otlp.Config{
			Endpoint:    *otlpEP,
			Interval:    *otlpIntv,
			ServiceName: *svcName,
			Resource:    map[string]string{"service.version": ver},
			Registry:    reg,
			Logger:      logger,
		})
	}
	var tracer *obs.Tracer
	if *slowest > 0 {
		tracer = obs.New(obs.Config{Slowest: *slowest, Sink: exporter.Sink()})
	}

	// Burn-rate engine over the scanner's own outcome counters (errors are
	// a subset of completions, so the availability SLI is exact) plus an
	// optional latency objective on the recovery summary. State serves at
	// /debug/slo on -debug-addr; transitions land in the event log.
	objectives := []slo.Objective{{
		Name:   "availability",
		Target: 0.999,
		Source: slo.CounterSource{
			Total:  reg.Counter("sigrec_scan_recoveries_total"),
			Errors: reg.Counter("sigrec_scan_recover_errors_total"),
		},
	}}
	if *sloLatUS > 0 {
		objectives = append(objectives, slo.Objective{
			Name:   fmt.Sprintf("latency_p99_%s", *sloLatUS),
			Target: 0.99,
			Source: slo.LatencySource{
				Summary:     reg.Summary("sigrec_recover_latency_microseconds", nil),
				ThresholdUS: float64(sloLatUS.Microseconds()),
			},
		})
	}
	sloEval := slo.New(slo.Config{
		Objectives: objectives,
		Registry:   reg,
		Events:     events,
	})
	cfg := scan.Config{
		Source:          source,
		Cache:           core.NewTieredCache(*cacheEnt, resultStore).Cache,
		EventLog:        events,
		Checkpoint:      cp,
		EFSDPath:        filepath.Join(*dataDir, "efsd.json"),
		Live:            *live,
		EndBlock:        end,
		PollInterval:    *poll,
		Workers:         *workers,
		QueueDepth:      *queue,
		CheckpointEvery: *ckEvery,
		Recover: core.Options{
			StepBudget:      *budget,
			MaxPaths:        *paths,
			Deadline:        *timeout,
			SelectorWorkers: *selWork,
		},
		Tracer: tracer,
		Logger: logger,
	}
	if haveResume {
		cfg.Resume = &resume
		logger.Info("resuming from checkpoint", "cursor", resume.String())
	} else {
		logger.Info("starting from genesis")
	}
	scanner, err := scan.New(cfg)
	if err != nil {
		events.Close()
		resultStore.Close()
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	mode := "backfill"
	if *live {
		mode = "live"
	}

	sloEval.Start()
	if exporter != nil {
		exporter.Start()
	}
	// The debug listener is the scanner's only HTTP surface, so unlike
	// sigrecd it also mounts /metrics and /healthz here.
	var dbg *http.Server
	if *debugAddr != "" {
		dbg = &http.Server{
			Addr: *debugAddr,
			Handler: server.DebugHandler(server.DebugOptions{
				Tracer:  tracer,
				Events:  events,
				SLO:     sloEval,
				Metrics: reg,
				Trace: server.TraceHandler(server.TraceOptions{
					Service: *svcName,
					Tracer:  tracer,
				}),
				Health: func() any {
					return struct {
						Status string `json:"status"`
						Mode   string `json:"mode"`
					}{"ok", mode}
				},
			}),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	logger.Info("scan starting", "mode", mode, "data", *dataDir, "seed", *seed,
		"blocks", *chainLen, "end", end, "workers", cfg.Workers,
		"debug_addr", *debugAddr, "otlp_endpoint", *otlpEP)

	serr := scanner.Run(ctx)

	sloEval.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if dbg != nil {
		_ = dbg.Shutdown(sctx)
	}
	// Flush the export queue after the pipeline drains so the collector
	// sees the final deployments and terminal counter values.
	if exporter != nil {
		if err := exporter.Close(sctx); err != nil {
			logger.Warn("otlp exporter close timed out", "err", err)
		}
	}

	// Drain order mirrors sigrecd: finish the pipeline (Run already saved
	// the final checkpoint), then close the log (flush + fsync), then the
	// store.
	if err := events.Close(); err != nil {
		logger.Error("event log close failed", "err", err)
	}
	st := resultStore.Stats()
	if err := resultStore.Close(); err != nil {
		logger.Error("result store close failed", "err", err)
	} else {
		logger.Info("result store closed", "records", st.Records, "segments", st.Segments)
	}
	if *stats {
		if _, err := core.Metrics().WriteTo(os.Stderr); err != nil {
			logger.Error("metrics dump failed", "err", err)
		}
	}
	if serr != nil {
		return serr
	}
	logger.Info("scan drained")
	return nil
}

func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q", format)
	}
}
