package sigrec

import (
	"bytes"
	"context"
	"encoding/hex"
	"strings"
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/solc"
)

func compileDemo(t *testing.T) ([]byte, []abi.Signature) {
	t.Helper()
	var fns []solc.Function
	var sigs []abi.Signature
	for _, s := range []string{
		"transfer(address,uint256)",
		"setData(bytes,bool)",
	} {
		sig, err := abi.ParseSignature(s)
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, sig)
		fns = append(fns, solc.Function{Sig: sig, Mode: solc.External})
	}
	code, err := solc.Compile(solc.Contract{Functions: fns}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	return code, sigs
}

func TestRecoverFacade(t *testing.T) {
	code, sigs := compileDemo(t)
	res, err := Recover(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Functions) != len(sigs) {
		t.Fatalf("recovered %d functions", len(res.Functions))
	}
	for i, sig := range sigs {
		if res.Functions[i].Selector != sig.Selector() {
			t.Errorf("function %d selector mismatch", i)
		}
		got := abi.Signature{Name: sig.Name, Inputs: res.Functions[i].Inputs}
		if !got.EqualTypes(sig) {
			t.Errorf("%s recovered as %s", sig.Canonical(), got.TypeList())
		}
	}
	if res.Rules.Total() == 0 {
		t.Error("rule stats empty")
	}
}

func TestRecoverHex(t *testing.T) {
	code, _ := compileDemo(t)
	for _, input := range []string{
		hex.EncodeToString(code),
		"0x" + hex.EncodeToString(code),
		"  0x" + hex.EncodeToString(code) + "\n",
	} {
		res, err := RecoverHex(input)
		if err != nil {
			t.Fatalf("RecoverHex(%q...): %v", input[:8], err)
		}
		if len(res.Functions) != 2 {
			t.Errorf("recovered %d functions", len(res.Functions))
		}
	}
	if _, err := RecoverHex("zznothex"); err == nil {
		t.Error("invalid hex must fail")
	}
	if _, err := RecoverHex("0x"); err == nil {
		t.Error("empty bytecode must fail")
	}
}

func TestRecoverFunctionFacade(t *testing.T) {
	code, sigs := compileDemo(t)
	fn, stats := RecoverFunction(code, sigs[0].Selector())
	got := abi.Signature{Name: "f", Inputs: fn.Inputs}
	if !got.EqualTypes(sigs[0]) {
		t.Errorf("recovered %s", got.TypeList())
	}
	if stats.Total() == 0 {
		t.Error("per-function stats empty")
	}
}

func TestParseSignatureFacade(t *testing.T) {
	sig, err := ParseSignature("transfer(address,uint256)")
	if err != nil {
		t.Fatal(err)
	}
	if sig.Selector().Hex() != "0xa9059cbb" {
		t.Errorf("selector = %s", sig.Selector().Hex())
	}
	if _, err := ParseSignature("broken("); err == nil {
		t.Error("malformed signature must fail")
	}
}

func TestRecoverDeployment(t *testing.T) {
	sig, _ := abi.ParseSignature("transfer(address,uint256)")
	deploy, err := solc.CompileDeployment(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.External},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	// Recovering the deployment payload directly must fail or find nothing
	// useful; RecoverDeployment must extract the runtime first.
	res, err := RecoverDeployment(deploy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Functions) != 1 || res.Functions[0].Selector != sig.Selector() {
		t.Fatalf("recovered %+v", res.Functions)
	}
	got := abi.Signature{Name: "f", Inputs: res.Functions[0].Inputs}
	if !got.EqualTypes(sig) {
		t.Errorf("recovered %s", got.TypeList())
	}
	if _, err := RecoverDeployment([]byte{0x00}); err == nil {
		t.Error("STOP-only init code must fail (no runtime returned)")
	}
	if _, err := RecoverDeployment([]byte{0xfe}); err == nil {
		t.Error("faulting init code must fail")
	}
}

func TestRecoverContextFacade(t *testing.T) {
	code, sigs := compileDemo(t)
	cache := NewCache(4)
	opts := Options{Cache: cache}
	for pass := 0; pass < 2; pass++ {
		res, err := RecoverContext(context.Background(), code, opts)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if len(res.Functions) != len(sigs) || res.Truncated {
			t.Fatalf("pass %d: %d functions, truncated=%v", pass, len(res.Functions), res.Truncated)
		}
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries", cache.Len())
	}

	items := RecoverAll(context.Background(), [][]byte{code, code, code}, 0, opts)
	for i, item := range items {
		if item.Err != nil || len(item.Result.Functions) != len(sigs) {
			t.Errorf("batch item %d: err=%v functions=%d", i, item.Err, len(item.Result.Functions))
		}
	}
}

func TestMetricsFacade(t *testing.T) {
	code, _ := compileDemo(t)
	if _, err := Recover(code); err != nil {
		t.Fatal(err)
	}
	snap := Metrics()
	if snap.Counters["sigrec_recoveries_total"] == 0 {
		t.Error("recoveries counter is zero after a recovery")
	}
	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sigrec_recoveries_total counter",
		"sigrec_recover_duration_microseconds_bucket{le=\"1000\"}",
		"sigrec_recover_duration_microseconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
