# The `check` target is the tier-1 gate: .github/workflows/ci.yml runs
# exactly these targets, so the local and CI command sequences cannot
# drift. Run `make check` before pushing.

GO ?= go

.PHONY: check fmt vet build test race serve serve-e2e obs-e2e analytics-e2e fuzz-smoke bench-smoke bench bench-gate

# BENCH is the tracked benchmark artifact for this PR in the BENCH_<n>.json
# trajectory; bump the number when a PR re-records performance.
BENCH ?= BENCH_5.json

check: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core ./internal/evm ./internal/server

# Run the sigrecd HTTP daemon locally (see README "Serving" for flags).
serve:
	$(GO) run ./cmd/sigrecd

# End-to-end serving-layer suite under the race detector: single recover,
# streamed batch, 429 shedding, singleflight coalescing, graceful drain,
# and the 200-contract load smoke through the batch endpoint (CI job
# "smoke").
serve-e2e:
	$(GO) test -race -count=1 ./internal/server

# Observability end-to-end suite under the race detector: span-tree
# recording and flight-recorder retention (internal/obs), plus the served
# surfaces — request-ID echo into logs and traces, /debug/slowest span
# trees for truncated recoveries, strict /metrics text-format conformance,
# and the pprof debug handler (CI job "smoke").
obs-e2e:
	$(GO) test -race -count=1 ./internal/obs
	$(GO) test -race -count=1 -run 'TestObs' ./internal/server

# Offline-analytics exactness gate under the race detector: sigrecd's
# serving path writes wide events under real batch load with rotation
# forced, the log is replayed the way cmd/sigrec-analyze does, and the
# replay's recovery/error/truncation/function/rule-fire totals must equal
# the /metrics counter deltas exactly (CI job "smoke").
analytics-e2e:
	$(GO) test -race -count=1 -run 'TestAnalyticsE2E' ./internal/server
	$(GO) test -race -count=1 ./internal/eventlog

# Smoke-run every fuzz target and the E1/E3 experiment benchmarks so the
# harnesses cannot silently rot (CI job "smoke").
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseType$$' -fuzztime 10s ./internal/abi
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeTransfer$$' -fuzztime 10s ./internal/abi
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeNested$$' -fuzztime 10s ./internal/abi
	$(GO) test -run '^$$' -fuzz '^FuzzRecover$$' -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzInferMutatedContract$$' -fuzztime 10s ./internal/core

bench-smoke:
	$(GO) test -run '^$$' -bench 'E1|E3' -benchtime 1x .

# Record the E1/E3 experiment benchmarks, the serving-layer throughput
# (req/s), and the tracing- and event-log-overhead A/B pairs as
# machine-readable JSON so the perf trajectory is tracked across PRs.
bench:
	( $(GO) test -run '^$$' -bench 'BenchmarkE1Accuracy$$|BenchmarkE3TimeDistribution$$|BenchmarkE3Tracing|BenchmarkE3Events' \
		-benchmem . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkServerThroughput$$' \
		-benchmem ./internal/server ) | $(GO) run ./cmd/benchjson -out $(BENCH)

# Gates: (1) fail when E3 allocs/op regresses >10% against the committed
# baseline — allocation counts are deterministic enough for shared CI
# runners, ns/op is recorded but not gated across machines; (2) fail when
# tracing-on ns/op exceeds tracing-off by >5%; (3) fail when wide-event
# emission exceeds events-off by >3% — both A/Bs run within one
# invocation on one machine, so wall time is comparable.
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkE3TimeDistribution$$|BenchmarkE3Tracing|BenchmarkE3Events' \
		-benchmem -count=5 . | $(GO) run ./cmd/benchjson -out bench_current.json
	$(GO) run ./cmd/benchjson -check -baseline bench_baseline.json \
		-current bench_current.json -bench E3TimeDistribution \
		-metric allocs_per_op -tolerance 0.10
	$(GO) run ./cmd/benchjson -check -baseline bench_current.json \
		-current bench_current.json -basebench E3TracingOff \
		-bench E3TracingOn -metric ns_per_op -tolerance 0.05
	$(GO) run ./cmd/benchjson -check -baseline bench_current.json \
		-current bench_current.json -basebench E3EventsOff \
		-bench E3EventsOn -metric ns_per_op -tolerance 0.03
	@rm -f bench_current.json
