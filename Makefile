# The `check` target is the tier-1 gate: .github/workflows/ci.yml runs
# exactly these targets, so the local and CI command sequences cannot
# drift. Run `make check` before pushing.

GO ?= go

.PHONY: check fmt vet build test race fuzz-smoke bench-smoke

check: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core ./internal/evm

# Smoke-run every fuzz target and the E1/E3 experiment benchmarks so the
# harnesses cannot silently rot (CI job "smoke").
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseType$$' -fuzztime 10s ./internal/abi
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeTransfer$$' -fuzztime 10s ./internal/abi
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeNested$$' -fuzztime 10s ./internal/abi
	$(GO) test -run '^$$' -fuzz '^FuzzRecover$$' -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzInferMutatedContract$$' -fuzztime 10s ./internal/core

bench-smoke:
	$(GO) test -run '^$$' -bench 'E1|E3' -benchtime 1x .
