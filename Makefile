# The `check` target is the tier-1 gate: .github/workflows/ci.yml runs
# exactly these targets, so the local and CI command sequences cannot
# drift. Run `make check` before pushing.

GO ?= go

.PHONY: check fmt vet build test race serve serve-e2e obs-e2e analytics-e2e cluster-e2e scan-e2e fuzz-smoke bench-smoke bench bench-gate pgo

# BENCH is the tracked benchmark artifact for this PR in the BENCH_<n>.json
# trajectory; bump the number when a PR re-records performance.
BENCH ?= BENCH_10.json

check: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core ./internal/evm ./internal/server

# Run the sigrecd HTTP daemon locally (see README "Serving" for flags).
serve:
	$(GO) run ./cmd/sigrecd

# End-to-end serving-layer suite under the race detector: single recover,
# streamed batch, 429 shedding, singleflight coalescing, graceful drain,
# and the 200-contract load smoke through the batch endpoint (CI job
# "smoke").
serve-e2e:
	$(GO) test -race -count=1 ./internal/server

# Observability end-to-end suite under the race detector: span-tree
# recording and flight-recorder retention (internal/obs), the OTLP
# exporter and SLO burn-rate engine unit suites, plus the served surfaces
# — request-ID echo into logs and traces, /debug/slowest span trees for
# truncated recoveries, strict /metrics text-format conformance, the
# pprof/SLO debug handler, and the live-export reconciliation: a real
# sigrecd under load ships spans to an in-process OTLP collector and the
# exported root-span count must equal the flight recorder's recovery
# count and the sigrec_recoveries_total delta exactly (CI job "smoke").
# Distributed tracing rides in the same gate: W3C traceparent
# adopt/reject policy on the serving layer, the /debug/trace stitching
# handler (local and fan-out), and the cluster trace e2e — a router plus
# three traced shards exporting to one in-process collector, reconciled
# span-by-span including a hedged request's cancelled loser.
# Set OBS_E2E_ARTIFACTS to a directory to keep the /debug/slo state of a
# failed reconciliation run.
obs-e2e:
	$(GO) test -race -count=1 ./internal/obs
	$(GO) test -race -count=1 ./internal/otlp
	$(GO) test -race -count=1 ./internal/slo
	$(GO) test -race -count=1 -run 'TestObs|TestTrace' ./internal/server
	$(GO) test -race -count=1 -run 'TestClusterTraceE2E' ./internal/cluster

# Offline-analytics exactness gate under the race detector: sigrecd's
# serving path writes wide events under real batch load with rotation
# forced, the log is replayed the way cmd/sigrec-analyze does, and the
# replay's recovery/error/truncation/function/rule-fire totals must equal
# the /metrics counter deltas exactly (CI job "smoke").
analytics-e2e:
	$(GO) test -race -count=1 -run 'TestAnalyticsE2E' ./internal/server
	$(GO) test -race -count=1 ./internal/eventlog

# Multi-node cluster gate under the race detector: build real sigrecd and
# sigrec-router binaries, run a 3-shard cluster behind the router, SIGKILL
# a shard mid-load and restart it, then reconcile every client-observed
# success against the union of the shards' event logs — no recovery lost,
# no attempt id duplicated, cache hit rate restored after the restart, a
# peer cache fill observed, and hedges firing on a hedging router (CI job
# "cluster"). Traces reconcile too: every winner's trace shows exactly one
# winning attempt span with the shard's recovery tree under it, hedge
# losers are present and cancelled, and orphans only appear across the
# kill window. Set CLUSTER_E2E_ARTIFACTS to keep shard/router logs and
# the stitched traces of the router's slowest requests.
cluster-e2e:
	CLUSTER_E2E=1 $(GO) test -race -count=1 -run 'TestClusterE2E' \
		-timeout 10m -v ./internal/cluster/e2etest

# Chain-scan crash gate under the race detector: build the real
# sigrec-scan binary, backfill a synthetic chain as an OS process,
# SIGKILL it mid-backfill, restart it with the same flags, and reconcile
# the durable event log, checkpoint cursor, and published EFSD against
# the chain's ground truth — zero deployments lost, duplicates only
# inside the crash-replay window, dedupe held across the restart, and
# every proxy attributed to its implementation's signatures (CI job
# "scan"). Set SCAN_E2E_ARTIFACTS to keep the data dir and process logs.
scan-e2e:
	SCAN_E2E=1 $(GO) test -race -count=1 -run 'TestScanE2E' \
		-timeout 10m -v ./internal/scan/e2etest

# Smoke-run every fuzz target and the E1/E3 experiment benchmarks so the
# harnesses cannot silently rot (CI job "smoke").
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseType$$' -fuzztime 10s ./internal/abi
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeTransfer$$' -fuzztime 10s ./internal/abi
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeNested$$' -fuzztime 10s ./internal/abi
	$(GO) test -run '^$$' -fuzz '^FuzzRecover$$' -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzInferMutatedContract$$' -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzStoreCorruption$$' -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointParse$$' -fuzztime 10s ./internal/scan

bench-smoke:
	$(GO) test -run '^$$' -bench 'E1|E3' -benchtime 1x .

# Record the E1/E3 experiment benchmarks, the serving-layer throughput
# (req/s), and the tracing- and event-log-overhead A/B pairs as
# machine-readable JSON so the perf trajectory is tracked across PRs.
# PGOFLAG opts a run into profile-guided builds once `make pgo` has
# recorded default.pgo, e.g. `make bench PGOFLAG=-pgo=default.pgo`.
PGOFLAG ?=

bench:
	( $(GO) test $(PGOFLAG) -run '^$$' -bench 'BenchmarkE1Accuracy$$|BenchmarkE3TimeDistribution$$|BenchmarkE3Tracing|BenchmarkE3Events|BenchmarkE3OTLP|BenchmarkE3Parallel|BenchmarkTieredCacheWarmLookup$$' \
		-benchmem . ; \
	  $(GO) test $(PGOFLAG) -run '^$$' -bench 'BenchmarkServerThroughput$$' \
		-benchmem ./internal/server ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkRouterOverhead|BenchmarkRouterTracing' \
		-benchmem -benchtime 200x -count=5 ./internal/cluster ; \
	  $(GO) test $(PGOFLAG) -run '^$$' -bench 'BenchmarkScanThroughput' \
		-benchmem ./internal/scan ) \
		| $(GO) run ./cmd/benchjson -out $(BENCH)

# Gates: (1) fail when E3 allocs/op regresses >10% against the committed
# baseline — allocation counts are deterministic enough for shared CI
# runners, ns/op is recorded but not gated across machines; (2) fail when
# span tracing, wide-event emission, or OTLP export (the E3OTLP pair: the
# hot path pays only the sink's non-blocking enqueue) gets expensive. PR 7
# halved the
# base recovery time, which made the old 5%/3% wall-time A/Bs a noise
# lottery (the absolute budget they encoded, ~250-400us per E3 op, is
# now within shared-runner scatter for either the fastest-of-5 or the
# mean-of-5 statistic), so each A/B now gates two things: the On/Off
# allocs/op ratio within 10% — allocation counts are deterministic, and
# any structural regression (a new per-span or per-event allocation)
# moves them immediately — and the mean-of-5 ns/op ratio within 25% as
# a gross-slowdown backstop (observed pure-noise scatter on the shared
# box reaches ~17%; a real blowup like the +80% tracing bug this gate
# once caught still trips instantly); (4) fail when
# routing through sigrec-router adds >10% latency over hitting the shard
# directly. The router A/B crosses an HTTP hop, so it gates the
# mean-over-count rather than the fastest run — machine drift during the
# invocation hits both sides alike and cancels in the mean ratio, while
# min-of-N is a lottery over which side caught the quietest window.
# (4b) the RouterTracing A/B gates the router's span machinery the same
# way the E3 pairs gate the shard's: allocs/op within 10% (the span tree
# is a fixed handful of allocations next to a recovery's thousands) and
# mean ns/op within 25% as the gross-slowdown backstop.
# (5) fail when the warm disk lookup (TieredCache restart path) exceeds
# 50us/op — an absolute ceiling: the whole point of the store is that a
# warm hit costs microseconds, not a recovery. (6) on machines with >=4
# cores, fail unless parallel selector exploration is at least 2x faster
# than sequential over the multi-selector corpus (negative tolerance =
# demanded improvement); skipped below 4 cores, where the pool cannot
# express itself. (7) fail when a warm chain rescan (80 deployments, all
# served by dedupe against a populated store) exceeds 25ms/op — an
# absolute throughput floor of >3000 deployments/s for the scanner's
# restart path; the observed figure is ~1.6ms, so the ceiling gates
# structural regressions (a recompute sneaking into the warm path), not
# runner scatter.
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkE3TimeDistribution$$|BenchmarkE3Tracing|BenchmarkE3Events|BenchmarkE3OTLP|BenchmarkTieredCacheWarmLookup$$' \
		-benchmem -count=5 . | $(GO) run ./cmd/benchjson -out bench_current.json
	$(GO) run ./cmd/benchjson -check -baseline bench_baseline.json \
		-current bench_current.json -bench E3TimeDistribution \
		-metric allocs_per_op -tolerance 0.10
	$(GO) run ./cmd/benchjson -check -current bench_current.json \
		-bench TieredCacheWarmLookup -metric ns_per_op -max 50000
	$(GO) run ./cmd/benchjson -check -baseline bench_current.json \
		-current bench_current.json -basebench E3TracingOff \
		-bench E3TracingOn -metric allocs_per_op -tolerance 0.10
	$(GO) run ./cmd/benchjson -check -baseline bench_current.json \
		-current bench_current.json -basebench E3TracingOff \
		-bench E3TracingOn -metric mean_ns_per_op -tolerance 0.25
	$(GO) run ./cmd/benchjson -check -baseline bench_current.json \
		-current bench_current.json -basebench E3EventsOff \
		-bench E3EventsOn -metric allocs_per_op -tolerance 0.10
	$(GO) run ./cmd/benchjson -check -baseline bench_current.json \
		-current bench_current.json -basebench E3EventsOff \
		-bench E3EventsOn -metric mean_ns_per_op -tolerance 0.25
	$(GO) run ./cmd/benchjson -check -baseline bench_current.json \
		-current bench_current.json -basebench E3OTLPOff \
		-bench E3OTLPOn -metric allocs_per_op -tolerance 0.10
	$(GO) run ./cmd/benchjson -check -baseline bench_current.json \
		-current bench_current.json -basebench E3OTLPOff \
		-bench E3OTLPOn -metric mean_ns_per_op -tolerance 0.25
	$(GO) test -run '^$$' -bench 'BenchmarkRouterOverhead|BenchmarkRouterTracing' \
		-benchmem -benchtime 200x -count=5 ./internal/cluster \
		| $(GO) run ./cmd/benchjson -out bench_router.json
	$(GO) run ./cmd/benchjson -check -baseline bench_router.json \
		-current bench_router.json -basebench RouterOverheadDirect \
		-bench RouterOverheadProxied -metric mean_ns_per_op -tolerance 0.10
	$(GO) run ./cmd/benchjson -check -baseline bench_router.json \
		-current bench_router.json -basebench RouterTracingOff \
		-bench RouterTracingOn -metric allocs_per_op -tolerance 0.10
	$(GO) run ./cmd/benchjson -check -baseline bench_router.json \
		-current bench_router.json -basebench RouterTracingOff \
		-bench RouterTracingOn -metric mean_ns_per_op -tolerance 0.25
	$(GO) test -run '^$$' -bench 'BenchmarkScanThroughputWarm$$' \
		-benchmem -count=3 ./internal/scan \
		| $(GO) run ./cmd/benchjson -out bench_scan.json
	$(GO) run ./cmd/benchjson -check -current bench_scan.json \
		-bench ScanThroughputWarm -metric ns_per_op -max 25000000
	@if [ "$$(nproc)" -ge 4 ]; then \
		$(GO) test -run '^$$' -bench 'BenchmarkE3Parallel' \
			-benchmem -count=5 . | $(GO) run ./cmd/benchjson -out bench_par.json && \
		$(GO) run ./cmd/benchjson -check -baseline bench_par.json \
			-current bench_par.json -basebench E3ParallelOff \
			-bench E3ParallelOn -metric mean_ns_per_op -tolerance -0.5; \
	else \
		echo "bench-gate: skipping E3Parallel speedup gate ($$(nproc) cores < 4)"; \
	fi
	@rm -f bench_current.json bench_router.json bench_par.json bench_scan.json

# Capture a CPU profile of sigrecd serving the corpus recovery workload
# through its pprof endpoint and install it as default.pgo (committed);
# see scripts/pgo.sh. Rebuild or re-bench with PGOFLAG=-pgo=default.pgo.
pgo:
	sh scripts/pgo.sh
