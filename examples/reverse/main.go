// Reverse: the paper's §6.3 scenario -- lift a contract to register-based
// IR (Erays) and enhance it with recovered signatures (Erays+): typed
// headers, named arguments, and removed parameter-access boilerplate.
package main

import (
	"fmt"
	"log"

	"sigrec"
	"sigrec/internal/abi"
	"sigrec/internal/erays"
	"sigrec/internal/solc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sig, err := abi.ParseSignature("payout(address,uint256[])")
	if err != nil {
		return err
	}
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.External},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		return err
	}

	fmt.Println("== Erays (no signatures) ==")
	base := erays.Lift(code)
	fmt.Print(base.String())

	res, err := sigrec.Recover(code)
	if err != nil {
		return err
	}
	enh := erays.Enhance(code, res)
	fmt.Println("\n== Erays+ (with SigRec signatures) ==")
	for _, h := range enh.Headers {
		fmt.Println(h)
	}
	fmt.Print(enh.Listing.String())
	fmt.Printf("\nreadability delta: +%d types, +%d names, +%d num() names, -%d access lines\n",
		enh.Metrics.AddedTypes, enh.Metrics.AddedNames, enh.Metrics.AddedNums, enh.Metrics.RemovedLines)
	return nil
}
