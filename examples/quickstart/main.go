// Quickstart: recover the function signatures of an ERC20-style token
// contract from its runtime bytecode alone.
//
// The demo contract is built with the repository's miniature Solidity
// compiler (the same substrate the evaluation uses); everything after that
// uses only the public sigrec API, exactly as a downstream user would on
// real deployed bytecode.
package main

import (
	"fmt"
	"log"

	"sigrec"
	"sigrec/internal/abi"
	"sigrec/internal/solc"
)

func main() {
	code, err := buildToken()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("token runtime bytecode: %d bytes\n\n", len(code))

	res, err := sigrec.Recover(code)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered function signatures:")
	for _, f := range res.Functions {
		fmt.Printf("  %s %-40s [%s]\n", f.Selector.Hex(), f.TypeList(), f.Language)
	}

	// Cross-check one selector against a known signature.
	transfer, err := sigrec.ParseSignature("transfer(address,uint256)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nknown id of transfer(address,uint256): %s\n", transfer.Selector().Hex())
}

// buildToken compiles an ERC20-like interface.
func buildToken() ([]byte, error) {
	var fns []solc.Function
	for _, s := range []string{
		"transfer(address,uint256)",
		"transferFrom(address,address,uint256)",
		"approve(address,uint256)",
		"balanceOf(address)",
		"batchTransfer(address[],uint256)",
		"setMetadata(string)",
	} {
		sig, err := abi.ParseSignature(s)
		if err != nil {
			return nil, err
		}
		fns = append(fns, solc.Function{Sig: sig, Mode: solc.External})
	}
	return solc.Compile(solc.Contract{Functions: fns}, solc.Config{Version: solc.DefaultVersion()})
}
