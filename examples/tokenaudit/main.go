// Tokenaudit: the paper's §6.1 scenario as a pipeline -- recover a token
// contract's signatures from bytecode, then audit a transaction stream for
// malformed actual arguments and short-address attacks.
package main

import (
	"fmt"
	"log"

	"sigrec"
	"sigrec/internal/abi"
	"sigrec/internal/chain"
	"sigrec/internal/parchecker"
	"sigrec/internal/solc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A token contract whose source we do not have.
	var fns []solc.Function
	var sigs []abi.Signature
	for _, s := range []string{
		"transfer(address,uint256)",
		"approve(address,uint256)",
		"mint(address,uint256)",
		"setOwner(address)",
	} {
		sig, err := abi.ParseSignature(s)
		if err != nil {
			return err
		}
		sigs = append(sigs, sig)
		fns = append(fns, solc.Function{Sig: sig, Mode: solc.External})
	}
	code, err := solc.Compile(solc.Contract{Functions: fns}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		return err
	}

	// Step 1: SigRec recovers the signatures from the bytecode.
	res, err := sigrec.Recover(code)
	if err != nil {
		return err
	}
	fmt.Println("recovered from bytecode:")
	for _, f := range res.Functions {
		fmt.Printf("  %s %s\n", f.Selector.Hex(), f.TypeList())
	}

	// Step 2: build ParChecker from the recovery.
	checker := parchecker.FromRecovery(res)

	// Step 3: scan a transaction stream carrying a few attacks.
	w, err := chain.Generate(chain.Config{
		Seed: 7, Blocks: 200, TxPerBlock: 25,
		InvalidRate: 0.02, ShortAddressShare: 0.25,
	}, sigs)
	if err != nil {
		return err
	}
	var invalid, attacks int
	for _, tx := range w.Txs {
		rep := checker.Check(tx.CallData)
		switch rep.Verdict {
		case parchecker.VerdictShortAddress:
			attacks++
			if attacks <= 3 {
				fmt.Printf("ATTACK block %d: %s on %s (%s)\n",
					tx.Block, rep.Verdict, rep.Selector.Hex(), rep.Reason)
			}
		case parchecker.VerdictInvalid:
			invalid++
		}
	}
	fmt.Printf("\nscanned %d transactions: %d invalid argument sets, %d short-address attacks\n",
		len(w.Txs), invalid, attacks)
	return nil
}
