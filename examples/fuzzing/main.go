// Fuzzing: the paper's §6.2 scenario -- signature-guided fuzzing against
// random-input fuzzing on seeded-bug contracts, with the typed fuzzer
// consuming SigRec's recovery rather than ground truth.
package main

import (
	"fmt"
	"log"

	"sigrec"
	"sigrec/internal/abi"
	"sigrec/internal/fuzz"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	targets, err := fuzz.GenerateBugContracts(2024, 200, 0.20)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d seeded-bug contracts\n", len(targets))

	// Recover each target's parameter types from its bytecode.
	recovered := make(map[string][]abi.Type, len(targets))
	for _, bc := range targets {
		rec, _ := sigrec.RecoverFunction(bc.Code, bc.Sig.Selector())
		recovered[bc.Sig.Canonical()] = rec.Inputs
	}

	const budget = 96
	typed := fuzz.RunCampaign(&fuzz.Typed{Inputs: recovered}, targets, budget, 1)
	random := fuzz.RunCampaign(&fuzz.Random{}, targets, budget, 1)

	fmt.Printf("\nbudget: %d inputs per contract\n", budget)
	fmt.Printf("  ContractFuzzer  (SigRec signatures): %3d/%d bugs\n", typed.Found, typed.Total)
	fmt.Printf("  ContractFuzzer- (random bytes):      %3d/%d bugs\n", random.Found, random.Total)
	if random.Found > 0 {
		gain := 100 * float64(typed.Found-random.Found) / float64(random.Found)
		fmt.Printf("  advantage from knowing signatures:   +%.0f%%\n", gain)
	}
	return nil
}
