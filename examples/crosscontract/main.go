// Crosscontract: deploy two interacting contracts into the in-repo EVM
// world, recover both signature sets from bytecode, and drive a real
// cross-contract call (a vault that forwards a deposit notification to a
// registry) -- demonstrating recovery and execution on multi-contract
// state, including revert rollback.
package main

import (
	"fmt"
	"log"

	"sigrec"
	"sigrec/internal/abi"
	"sigrec/internal/evm"
)

var (
	vaultAddr    = evm.WordFromUint64(0x1001)
	registryAddr = evm.WordFromUint64(0x1002)
	user         = evm.WordFromUint64(0xCAFE)
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	depositSig, err := abi.ParseSignature("deposit(uint256)")
	if err != nil {
		return err
	}
	notifySig, err := abi.ParseSignature("notify(uint256)")
	if err != nil {
		return err
	}

	registry := buildRegistry(notifySig)
	vault := buildVault(depositSig, notifySig)

	// Recover both contracts' signatures from bytecode alone.
	for name, code := range map[string][]byte{"vault": vault, "registry": registry} {
		res, err := sigrec.Recover(code)
		if err != nil {
			return fmt.Errorf("recover %s: %w", name, err)
		}
		fmt.Printf("%s functions:\n", name)
		for _, f := range res.Functions {
			fmt.Printf("  %s %s\n", f.Selector.Hex(), f.TypeList())
		}
	}

	// Deploy and drive a real cross-contract call.
	w := evm.NewWorld()
	w.Deploy(vaultAddr, vault)
	w.Deploy(registryAddr, registry)

	callData, err := abi.EncodeCall(depositSig, []abi.Value{evm.WordFromUint64(500)})
	if err != nil {
		return err
	}
	res, err := w.Call(user, vaultAddr, callData, evm.ZeroWord, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\ndeposit(500): reverted=%v steps=%d gas=%d\n", res.Reverted, res.Steps, res.GasUsed)

	vaultAcc, _ := w.Account(vaultAddr)
	regAcc, _ := w.Account(registryAddr)
	fmt.Printf("vault storage[0]    = %s (recorded deposit)\n", vaultAcc.Storage[evm.ZeroWord])
	fmt.Printf("registry storage[0] = %s (notified amount)\n", regAcc.Storage[evm.ZeroWord])

	// A zero deposit violates the registry's check; the whole call chain
	// reverts and no state survives.
	zeroCall, _ := abi.EncodeCall(depositSig, []abi.Value{evm.ZeroWord})
	res, err = w.Call(user, vaultAddr, zeroCall, evm.ZeroWord, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\ndeposit(0): reverted=%v (registry rejected it; rollback kept state clean)\n", res.Reverted)
	return nil
}

// buildRegistry accepts notify(uint256) and requires a nonzero amount.
func buildRegistry(notifySig abi.Signature) []byte {
	a := evm.NewAssembler()
	body := a.NewLabel()
	fail := a.NewLabel()
	sel := notifySig.Selector()
	a.Push(0).Op(evm.CALLDATALOAD).Push(0xe0).Op(evm.SHR)
	a.PushBytes(sel[:]).Op(evm.EQ).JumpI(body)
	a.Op(evm.STOP)
	a.Bind(body)
	a.Push(4).Op(evm.CALLDATALOAD) // amount
	a.Dup(1).Op(evm.ISZERO).JumpI(fail)
	a.Push(0).Op(evm.SSTORE) // storage[0] = amount
	a.Op(evm.STOP)
	a.Bind(fail)
	a.Push(0).Push(0).Op(evm.REVERT)
	code, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return code
}

// buildVault accepts deposit(uint256), records it, and forwards a
// notify(uint256) call to the registry; if the registry reverts, the vault
// reverts too.
func buildVault(depositSig, notifySig abi.Signature) []byte {
	a := evm.NewAssembler()
	body := a.NewLabel()
	ok := a.NewLabel()
	dsel := depositSig.Selector()
	nsel := notifySig.Selector()
	a.Push(0).Op(evm.CALLDATALOAD).Push(0xe0).Op(evm.SHR)
	a.PushBytes(dsel[:]).Op(evm.EQ).JumpI(body)
	a.Op(evm.STOP)
	a.Bind(body)
	// storage[0] = amount
	a.Push(4).Op(evm.CALLDATALOAD)
	a.Push(0).Op(evm.SSTORE)
	// memory[0..36) = notify selector + amount
	a.PushBytes(nsel[:])
	a.Push(224).Op(evm.SHL)
	a.Push(0).Op(evm.MSTORE)
	a.Push(4).Op(evm.CALLDATALOAD)
	a.Push(4).Op(evm.MSTORE)
	// call registry(notify, amount)
	a.Push(0)  // retLen
	a.Push(0)  // retOff
	a.Push(36) // argsLen
	a.Push(0)  // argsOff
	a.Push(0)  // value
	a.PushWord(registryAddr)
	a.Push(100000) // gas
	a.Op(evm.CALL)
	a.JumpI(ok)
	a.Push(0).Push(0).Op(evm.REVERT) // propagate the registry's rejection
	a.Bind(ok)
	a.Op(evm.STOP)
	code, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return code
}
