module sigrec

go 1.22
